(* Machine IR: an x86-64-flavoured two-address instruction set over
   virtual (then physical) registers.  This is the landing zone of the
   Section 6 lowering story:

     LLVM IR --(isel)--> MIR(vregs) --(regalloc)--> MIR(phys) --(emit)--> asm

   freeze lowers to [Copy] ("taking a copy from an undef register
   effectively freezes undefinedness"); poison/undef constants lower to
   [Undef_def] — the prototype's "pinned undef register", which consumes
   a register for its live range (the paper lists reusing EBP/ESP or a
   zero register as future work). *)

type reg =
  | Vreg of int (* virtual, pre-allocation *)
  | Preg of int (* physical, post-allocation: index into Target.regs *)

type operand =
  | Reg of reg
  | Imm of int64

type cond = CEq | CNe | CUgt | CUge | CUlt | CUle | CSgt | CSge | CSlt | CSle

type width = W8 | W16 | W32 | W64

type binkind = BAdd | BSub | BImul | BAnd | BOr | BXor | BShl | BShr | BSar

type addr = {
  base : reg;
  index : reg option;
  scale : int; (* 1, 2, 4, 8 *)
  disp : int;
}

type inst =
  | Mov of width * reg * operand
  | Bin of binkind * width * reg * operand (* dst op= src *)
  | Neg of width * reg
  | Not of width * reg
  | Div of { signed : bool; width : width; dst_quot : reg; dst_rem : reg; lhs : reg; rhs : reg }
  | Cmp of width * reg * operand (* sets flags *)
  | Test of width * reg * reg
  | Setcc of cond * reg
  | Cmov of cond * width * reg * reg
  | Movsx of { dst : reg; src : reg; from_w : width; to_w : width }
  | Movzx of { dst : reg; src : reg; from_w : width; to_w : width }
  | Lea of { dst : reg; addr : addr }
  | Load of width * reg * addr
  | Store of width * addr * operand
  | Copy of width * reg * reg (* freeze / phi-elimination copies *)
  | Undef_def of reg (* pinned undef register definition (poison lowering) *)
  | Call of string * reg list * reg option (* callee, args (by position), result *)
  | Push of reg
  | Pop of reg
  | Jmp of string
  | Jcc of cond * string
  | Ret of reg option
  | Spill_store of int * reg (* stack slot := reg (regalloc-inserted) *)
  | Spill_load of int * reg (* reg := stack slot *)

type block = { mlabel : string; mutable insts : inst list }

(* Where an incoming argument lives after register allocation: in a
   physical register or in a spill slot.  Recorded by regalloc so an
   executor of the physical-register form knows how to seed the state. *)
type arg_loc =
  | Loc_reg of int (* physical register index *)
  | Loc_slot of int (* spill slot index *)

type func = {
  mname : string;
  mutable blocks : block list;
  mutable nvregs : int;
  mutable nslots : int; (* spill slots *)
}

let cond_of_pred (p : Ub_ir.Instr.icmp_pred) : cond =
  match p with
  | Ub_ir.Instr.Eq -> CEq
  | Ub_ir.Instr.Ne -> CNe
  | Ub_ir.Instr.Ugt -> CUgt
  | Ub_ir.Instr.Uge -> CUge
  | Ub_ir.Instr.Ult -> CUlt
  | Ub_ir.Instr.Ule -> CUle
  | Ub_ir.Instr.Sgt -> CSgt
  | Ub_ir.Instr.Sge -> CSge
  | Ub_ir.Instr.Slt -> CSlt
  | Ub_ir.Instr.Sle -> CSle

let width_of_bits b : width =
  if b <= 8 then W8 else if b <= 16 then W16 else if b <= 32 then W32 else W64

let cond_name = function
  | CEq -> "e" | CNe -> "ne"
  | CUgt -> "a" | CUge -> "ae" | CUlt -> "b" | CUle -> "be"
  | CSgt -> "g" | CSge -> "ge" | CSlt -> "l" | CSle -> "le"

(* Registers read and written by an instruction (for liveness). *)
let regs_of_operand = function Reg r -> [ r ] | Imm _ -> []
let regs_of_addr a = (a.base :: (match a.index with Some i -> [ i ] | None -> []))

let uses = function
  | Mov (_, _, src) -> regs_of_operand src
  | Bin (_, _, dst, src) -> dst :: regs_of_operand src
  | Neg (_, r) | Not (_, r) -> [ r ]
  | Div { lhs; rhs; _ } -> [ lhs; rhs ]
  | Cmp (_, a, b) -> a :: regs_of_operand b
  | Test (_, a, b) -> [ a; b ]
  | Setcc _ -> []
  | Cmov (_, _, dst, src) -> [ dst; src ]
  | Movsx { src; _ } | Movzx { src; _ } -> [ src ]
  | Lea { addr; _ } -> regs_of_addr addr
  | Load (_, _, addr) -> regs_of_addr addr
  | Store (_, addr, src) -> regs_of_addr addr @ regs_of_operand src
  | Copy (_, _, src) -> [ src ]
  | Undef_def _ -> []
  | Call (_, args, _) -> args
  | Push r -> [ r ]
  | Pop _ -> []
  | Jmp _ -> []
  | Jcc _ -> []
  | Ret (Some r) -> [ r ]
  | Ret None -> []
  | Spill_store (_, r) -> [ r ]
  | Spill_load _ -> []

let defs = function
  | Mov (_, d, _) -> [ d ]
  | Bin (_, _, d, _) -> [ d ]
  | Neg (_, r) | Not (_, r) -> [ r ]
  | Div { dst_quot; dst_rem; _ } -> [ dst_quot; dst_rem ]
  | Cmp _ | Test _ -> []
  | Setcc (_, d) -> [ d ]
  | Cmov (_, _, d, _) -> [ d ]
  | Movsx { dst; _ } | Movzx { dst; _ } -> [ dst ]
  | Lea { dst; _ } -> [ dst ]
  | Load (_, d, _) -> [ d ]
  | Store _ -> []
  | Copy (_, d, _) -> [ d ]
  | Undef_def d -> [ d ]
  | Call (_, _, Some d) -> [ d ]
  | Call (_, _, None) -> []
  | Push _ -> []
  | Pop d -> [ d ]
  | Jmp _ | Jcc _ | Ret _ -> []
  | Spill_store _ -> []
  | Spill_load (_, d) -> [ d ]

let map_regs f inst =
  let fo = function Reg r -> Reg (f r) | Imm _ as i -> i in
  let fa a = { a with base = f a.base; index = Option.map f a.index } in
  match inst with
  | Mov (w, d, s) -> Mov (w, f d, fo s)
  | Bin (k, w, d, s) -> Bin (k, w, f d, fo s)
  | Neg (w, r) -> Neg (w, f r)
  | Not (w, r) -> Not (w, f r)
  | Div d ->
    Div { d with dst_quot = f d.dst_quot; dst_rem = f d.dst_rem; lhs = f d.lhs; rhs = f d.rhs }
  | Cmp (w, a, b) -> Cmp (w, f a, fo b)
  | Test (w, a, b) -> Test (w, f a, f b)
  | Setcc (c, d) -> Setcc (c, f d)
  | Cmov (c, w, d, s) -> Cmov (c, w, f d, f s)
  | Movsx m -> Movsx { m with dst = f m.dst; src = f m.src }
  | Movzx m -> Movzx { m with dst = f m.dst; src = f m.src }
  | Lea l -> Lea { dst = f l.dst; addr = fa l.addr }
  | Load (w, d, a) -> Load (w, f d, fa a)
  | Store (w, a, s) -> Store (w, fa a, fo s)
  | Copy (w, d, s) -> Copy (w, f d, f s)
  | Undef_def d -> Undef_def (f d)
  | Call (n, args, r) -> Call (n, List.map f args, Option.map f r)
  | Push r -> Push (f r)
  | Pop r -> Pop (f r)
  | (Jmp _ | Jcc _) as i -> i
  | Ret r -> Ret (Option.map f r)
  | Spill_store (s, r) -> Spill_store (s, f r)
  | Spill_load (s, r) -> Spill_load (s, f r)
