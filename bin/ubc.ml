(* ubc: the command-line driver.

     ubc compile [-pipeline legacy|prototype] [-emit ir|asm] FILE.c|FILE.ll
     ubc run     [-mode MODE] FILE.c|FILE.ll [-entry main]
     ubc check   [-mode MODE] SRC.ll TGT.ll        (refinement checking)
     ubc reduce  [-mode MODE] [-o OUT] SRC.ll [TGT.ll]
                                                    (counterexample shrinking)
     ubc modes                                      (list semantics modes)   *)

open Cmdliner
open Ub_ir

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let is_minic path = Filename.check_suffix path ".c"

let load_module ~pipeline path : Func.module_ =
  if is_minic path then
    Ub_minic.Lower.compile
      ~cfg:
        (match pipeline with
        | Ub_core.Driver.Baseline -> Ub_minic.Lower.clang_legacy
        | Ub_core.Driver.Prototype -> Ub_minic.Lower.clang_fixed)
      (read_file path)
  else Parser.parse_module (read_file path)

let mode_conv =
  let parse s =
    match Ub_sem.Mode.find s with
    | Some m -> Ok m
    | None ->
      Error (`Msg (Printf.sprintf "unknown mode %s (try: %s)" s
                     (String.concat ", " (List.map (fun m -> m.Ub_sem.Mode.name) Ub_sem.Mode.all))))
  in
  Arg.conv (parse, fun ppf m -> Format.fprintf ppf "%s" m.Ub_sem.Mode.name)

let pipeline_conv =
  let parse = function
    | "legacy" | "baseline" -> Ok Ub_core.Driver.Baseline
    | "prototype" | "freeze" -> Ok Ub_core.Driver.Prototype
    | s -> Error (`Msg ("unknown pipeline " ^ s))
  in
  Arg.conv
    ( parse,
      fun ppf p ->
        Format.fprintf ppf "%s"
          (match p with Ub_core.Driver.Baseline -> "legacy" | _ -> "prototype") )

let trace_arg =
  Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Stream a JSONL telemetry trace to $(docv) and write an \
                   aggregated run report to $(docv).report.json.")

(* Arm the telemetry sink around a command body; flush trace + report on
   the way out (including on raise, so partial traces survive). *)
let with_trace trace k =
  match trace with
  | None -> k ()
  | Some f ->
    Ub_obs.Obs.set_trace f;
    Fun.protect
      ~finally:(fun () ->
        Ub_obs.Obs.close ();
        Ub_obs.Obs.write_report (f ^ ".report.json"))
      k

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
let mode_arg =
  Arg.(value & opt mode_conv Ub_sem.Mode.proposed & info [ "mode" ] ~docv:"MODE"
         ~doc:"Semantics mode (see 'ubc modes').")
let pipeline_arg =
  Arg.(value & opt pipeline_conv Ub_core.Driver.Prototype
         & info [ "pipeline" ] ~docv:"P" ~doc:"legacy or prototype.")

let compile_cmd =
  let emit =
    Arg.(value & opt (enum [ ("ir", `Ir); ("asm", `Asm) ]) `Ir
           & info [ "emit" ] ~doc:"Output kind: ir or asm.")
  in
  let run trace pipeline emit file =
    with_trace trace @@ fun () ->
    let cfg =
      match pipeline with
      | Ub_core.Driver.Baseline -> Ub_opt.Pass.legacy
      | Ub_core.Driver.Prototype -> Ub_opt.Pass.prototype
    in
    let m = load_module ~pipeline file in
    let m = Ub_opt.Pipeline.run_o2 cfg m in
    (match emit with
    | `Ir -> print_string (Printer.module_to_string m)
    | `Asm ->
      List.iter
        (fun (_, c) -> print_string c.Ub_backend.Compile.asm)
        (Ub_backend.Compile.compile_module m));
    0
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile Mini-C or IR through the -O2 pipeline.")
    Term.(const run $ trace_arg $ pipeline_arg $ emit $ file_arg)

let run_cmd =
  let entry =
    Arg.(value & opt string "main" & info [ "entry" ] ~docv:"F" ~doc:"Entry function.")
  in
  let run trace mode pipeline entry file =
    with_trace trace @@ fun () ->
    let m = load_module ~pipeline file in
    let fn = Func.find_func_exn m entry in
    let r = Ub_sem.Interp.run ~mode ~module_:m ~fuel:10_000_000 fn [] in
    Printf.printf "%s\n" (Ub_sem.Interp.outcome_to_string r.Ub_sem.Interp.outcome);
    0
  in
  Cmd.v (Cmd.info "run" ~doc:"Interpret a program under a semantics mode.")
    Term.(const run $ trace_arg $ mode_arg $ pipeline_arg $ entry $ file_arg)

let check_cmd =
  let tgt_arg = Arg.(required & pos 1 (some file) None & info [] ~docv:"TGT") in
  let run trace mode src tgt =
    with_trace trace @@ fun () ->
    let load p =
      let m = Parser.parse_module (read_file p) in
      List.hd m.Func.funcs
    in
    match Ub_refine.Checker.check mode ~src:(load src) ~tgt:(load tgt) with
    | Ub_refine.Checker.Refines ->
      print_endline "refines";
      0
    | v ->
      print_endline (Ub_refine.Checker.verdict_to_string v);
      1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Does TGT refine SRC under the given semantics mode?")
    Term.(const run $ trace_arg $ mode_arg $ file_arg $ tgt_arg)

let reduce_cmd =
  let tgt_arg =
    Arg.(value & pos 1 (some file) None
           & info [] ~docv:"TGT"
               ~doc:"Target function file. Omit it when FILE already holds both \
                     functions (source first, target second), e.g. a witness \
                     written by 'bench --corpus'.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
           & info [ "o" ] ~docv:"OUT" ~doc:"Also write the minimized witness module to $(docv).")
  in
  let run trace mode file tgt out =
    with_trace trace @@ fun () ->
    let src, tgt =
      match tgt with
      | Some t ->
        let one p = List.hd (Parser.parse_module (read_file p)).Func.funcs in
        (one file, one t)
      | None -> (
        match (Parser.parse_module (read_file file)).Func.funcs with
        | src :: tgt :: _ -> (src, tgt)
        | _ ->
          prerr_endline
            "ubc reduce: FILE must contain two functions (source, then target) when TGT is omitted";
          exit 2)
    in
    match Ub_refine.Reduce.minimize_cex mode ~src ~tgt with
    | None ->
      Printf.printf "nothing to reduce: pair is not a counterexample under %s (%s)\n"
        mode.Ub_sem.Mode.name
        (Ub_refine.Checker.verdict_to_string (Ub_refine.Checker.check mode ~src ~tgt));
      1
    | Some r ->
      let header =
        Printf.sprintf "; minimized counterexample\n; mode: %s\n; %s\n; verdict: %s\n\n"
          mode.Ub_sem.Mode.name
          (Format.asprintf "%a" Ub_shrink.Reduce.pp_stats r.Ub_refine.Reduce.stats)
          (Ub_refine.Checker.verdict_to_string r.Ub_refine.Reduce.verdict)
      in
      let text =
        Printer.func_to_string { r.Ub_refine.Reduce.red_src with Func.name = "src" }
        ^ "\n"
        ^ Printer.func_to_string { r.Ub_refine.Reduce.red_tgt with Func.name = "tgt" }
      in
      print_string (header ^ text);
      (match out with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (header ^ text);
        close_out oc);
      0
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Minimize a failing transform pair to a small counterexample witness.")
    Term.(const run $ trace_arg $ mode_arg $ file_arg $ tgt_arg $ out_arg)

let modes_cmd =
  let run () =
    List.iter (fun m -> print_endline (Ub_sem.Mode.describe m)) Ub_sem.Mode.all;
    0
  in
  Cmd.v (Cmd.info "modes" ~doc:"List the available semantics modes.") Term.(const run $ const ())

let () =
  let info = Cmd.info "ubc" ~doc:"The taming-undefined-behavior compiler driver." in
  exit (Cmd.eval' (Cmd.group info [ compile_cmd; run_cmd; check_cmd; reduce_cmd; modes_cmd ]))
