(* ubc: the command-line driver.

     ubc compile [-pipeline legacy|prototype] [-emit ir|asm|mir]
                 [--obj-size] [--cycles] FILE.c|FILE.ll
     ubc tv      [-mode MODE] [--inject BUG] [--gen N --seed S] [FILE.ll]
                                                    (IR->MIR translation validation)
     ubc run     [-mode MODE] FILE.c|FILE.ll [-entry main]
     ubc check   [-mode MODE] SRC.ll TGT.ll        (refinement checking)
     ubc reduce  [-mode MODE] [-o OUT] SRC.ll [TGT.ll]
                                                    (counterexample shrinking)
     ubc serve   --socket PATH [-j N] [--queue N]   (refinement daemon)
     ubc fleet   --dir DIR [--shards N]             (sharded daemon fleet)
     ubc submit  --socket PATH|--fleet SPEC [-mode MODE] SRC.ll [TGT.ll]
                                                    (query a daemon or fleet)
     ubc hunt    [--entry NAME]... [--all-entries] [--socket PATH|--fleet SPEC]
                                                    (miscompile hunting farm)
     ubc modes                                      (list semantics modes)

   Exit codes, uniformly across subcommands:
     0  success (and, for check/submit, every verdict was "refines")
     1  verdict failure: a counterexample, unknown, timeout or overload
     2  usage error (bad flags, malformed input files)
     3  internal error (unexpected exception, protocol breakage)
     130/143  interrupted by SIGINT/SIGTERM after cleanup                *)

open Cmdliner
open Ub_ir

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* Usage-class failures raised by command bodies (malformed inputs). *)
exception Usage of string

(* ------------------------------------------------------------------ *)
(* Signal hygiene: Ctrl-C (or a SIGTERM) during a pooled run must not  *)
(* leave orphaned worker children or stray socket/spool files behind.  *)
(* The serve command swaps these handlers for its own graceful drain.  *)
(* ------------------------------------------------------------------ *)

let cleanup_paths : string list ref = ref []
let register_cleanup path = cleanup_paths := path :: !cleanup_paths

let run_cleanups () =
  Ub_exec.Pool.terminate_workers ();
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) !cleanup_paths;
  cleanup_paths := []

let install_signal_cleanup () =
  let handler sg =
    run_cleanups ();
    (* conventional 128+signo so callers can tell interruption from a
       verdict failure *)
    exit (128 + if sg = Sys.sigint then 2 else 15)
  in
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle handler));
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle handler))

(* Wrap a command body: usage errors exit 2, unexpected exceptions 3. *)
let guard (f : unit -> int) : int =
  match f () with
  | code -> code
  | exception Usage msg ->
    Printf.eprintf "ubc: %s\n" msg;
    2
  | exception Failure msg ->
    Printf.eprintf "ubc: %s\n" msg;
    3
  | exception e ->
    Printf.eprintf "ubc: internal error: %s\n" (Printexc.to_string e);
    3

let is_minic path = Filename.check_suffix path ".c"

let load_module ~pipeline path : Func.module_ =
  if is_minic path then
    Ub_minic.Lower.compile
      ~cfg:
        (match pipeline with
        | Ub_core.Driver.Baseline -> Ub_minic.Lower.clang_legacy
        | Ub_core.Driver.Prototype -> Ub_minic.Lower.clang_fixed)
      (read_file path)
  else Parser.parse_module (read_file path)

let mode_conv =
  let parse s =
    match Ub_sem.Mode.find s with
    | Some m -> Ok m
    | None ->
      Error (`Msg (Printf.sprintf "unknown mode %s (try: %s)" s
                     (String.concat ", " (List.map (fun m -> m.Ub_sem.Mode.name) Ub_sem.Mode.all))))
  in
  Arg.conv (parse, fun ppf m -> Format.fprintf ppf "%s" m.Ub_sem.Mode.name)

let pipeline_conv =
  let parse = function
    | "legacy" | "baseline" -> Ok Ub_core.Driver.Baseline
    | "prototype" | "freeze" -> Ok Ub_core.Driver.Prototype
    | s -> Error (`Msg ("unknown pipeline " ^ s))
  in
  Arg.conv
    ( parse,
      fun ppf p ->
        Format.fprintf ppf "%s"
          (match p with Ub_core.Driver.Baseline -> "legacy" | _ -> "prototype") )

let trace_arg =
  Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Stream a JSONL telemetry trace to $(docv) and write an \
                   aggregated run report to $(docv).report.json.")

(* Arm the telemetry sink around a command body; flush trace + report on
   the way out (including on raise, so partial traces survive). *)
let with_trace trace k =
  match trace with
  | None -> k ()
  | Some f ->
    Ub_obs.Obs.set_trace f;
    Fun.protect
      ~finally:(fun () ->
        Ub_obs.Obs.close ();
        Ub_obs.Obs.write_report (f ^ ".report.json"))
      k

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
let mode_arg =
  Arg.(value & opt mode_conv Ub_sem.Mode.proposed & info [ "mode" ] ~docv:"MODE"
         ~doc:"Semantics mode (see 'ubc modes').")
let pipeline_arg =
  Arg.(value & opt pipeline_conv Ub_core.Driver.Prototype
         & info [ "pipeline" ] ~docv:"P" ~doc:"legacy or prototype.")

let compile_cmd =
  let emit =
    Arg.(value & opt (enum [ ("ir", `Ir); ("asm", `Asm); ("mir", `Mir) ]) `Ir
           & info [ "emit" ]
               ~doc:"Output kind: ir, asm, or mir (pre- and post-regalloc MIR \
                     plus the emitted asm, per function).")
  in
  let obj_size =
    Arg.(value & flag
           & info [ "obj-size" ]
               ~doc:"Print the emitted object size of each function, in bytes.")
  in
  let cycles =
    Arg.(value & flag
           & info [ "cycles" ]
               ~doc:"Profile one execution of @main under the proposed \
                     semantics and print simulated cycle totals under both \
                     machine models.")
  in
  let run trace pipeline emit obj_size cycles file =
    guard @@ fun () ->
    with_trace trace @@ fun () ->
    let cfg =
      match pipeline with
      | Ub_core.Driver.Baseline -> Ub_opt.Pass.legacy
      | Ub_core.Driver.Prototype -> Ub_opt.Pass.prototype
    in
    let m = load_module ~pipeline file in
    let m = Ub_opt.Pipeline.run_o2 cfg m in
    let compiled = lazy (Ub_backend.Compile.compile_module m) in
    (match emit with
    | `Ir -> print_string (Printer.module_to_string m)
    | `Asm ->
      List.iter
        (fun (_, c) -> print_string c.Ub_backend.Compile.asm)
        (Lazy.force compiled)
    | `Mir ->
      List.iter
        (fun (name, (c : Ub_backend.Compile.compiled)) ->
          Printf.printf "; ==== %s: pre-regalloc MIR ====\n" name;
          print_string (Ub_backend.Mir_print.func c.Ub_backend.Compile.pre_ra);
          Printf.printf "; ==== %s: post-regalloc MIR (%s) ====\n" name
            (Ub_backend.Mir_print.arg_locs c.Ub_backend.Compile.arg_locs);
          print_string (Ub_backend.Mir_print.func c.Ub_backend.Compile.mir);
          Printf.printf "; ==== %s: asm ====\n" name;
          print_string c.Ub_backend.Compile.asm)
        (Lazy.force compiled));
    if obj_size then
      List.iter
        (fun (name, (c : Ub_backend.Compile.compiled)) ->
          Printf.printf "%s: %d bytes\n" name c.Ub_backend.Compile.obj_size)
        (Lazy.force compiled);
    if cycles then begin
      let fn =
        match Func.find_func m "main" with
        | Some fn -> fn
        | None -> raise (Usage "--cycles needs a @main function to profile")
      in
      let profile, outcome = Ub_sem.Interp.profile ~module_:m fn [] in
      Printf.printf "main: %s\n" (Ub_sem.Interp.outcome_to_string outcome);
      List.iter
        (fun (p : Ub_backend.Target.profile) ->
          let total =
            List.fold_left
              (fun acc (name, c) ->
                let fprof =
                  List.filter_map
                    (fun ((f, l), n) -> if f = name then Some (l, n) else None)
                    profile
                in
                acc +. Ub_backend.Compile.simulate_cycles p c ~profile:fprof)
              0.0 (Lazy.force compiled)
          in
          Printf.printf "cycles[%s]: %.0f\n" p.Ub_backend.Target.prof_name total)
        Ub_backend.Target.profiles
    end;
    0
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile Mini-C or IR through the -O2 pipeline.")
    Term.(const run $ trace_arg $ pipeline_arg $ emit $ obj_size $ cycles $ file_arg)

(* Translation validation: IR functions against their own compilation. *)
let tv_cmd =
  let inject =
    Arg.(value & opt (some string) None
           & info [ "inject" ] ~docv:"BUG"
               ~doc:"Compile with an injected backend bug from the catalog in \
                     lib/backend/mir_inject.ml; the verdict should flip to \
                     'NOT refined' on a triggering function.")
  in
  let gen =
    Arg.(value & opt (some int) None
           & info [ "gen" ] ~docv:"N"
               ~doc:"Instead of reading FILE, generate $(docv) backend-shaped \
                     functions with the hunt generator and validate each.")
  in
  let seed =
    Arg.(value & opt int 20170601
           & info [ "seed" ] ~docv:"S" ~doc:"Generator seed for --gen.")
  in
  let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run trace mode inject gen seed file =
    guard @@ fun () ->
    with_trace trace @@ fun () ->
    let bug =
      Option.map
        (fun name ->
          match Ub_backend.Mir_inject.find name with
          | Some b -> b
          | None ->
            raise
              (Usage
                 (Printf.sprintf "unknown backend bug %s (try: %s)" name
                    (String.concat ", "
                       (List.map
                          (fun (b : Ub_backend.Mir_inject.bug) ->
                            b.Ub_backend.Mir_inject.b_name)
                          Ub_backend.Mir_inject.all)))))
        inject
    in
    let funcs =
      match (gen, file) with
      | Some n, None ->
        let rng = Ub_support.Prng.create ~seed in
        List.init n (fun i ->
            Ub_fuzz.Gen.hunt_func rng ~name:(Printf.sprintf "g%d" i)
              { Ub_fuzz.Gen.default_hunt with Ub_fuzz.Gen.h_backend = true })
      | None, Some path -> (Parser.parse_module (read_file path)).Func.funcs
      | Some _, Some _ -> raise (Usage "--gen and FILE are mutually exclusive")
      | None, None -> raise (Usage "need either FILE or --gen N")
    in
    let bad = ref 0 in
    List.iter
      (fun (fn : Func.t) ->
        let v = Ub_backend.Tv.check_func ~mode ?bug fn in
        (match v with Ub_backend.Tv.Not_refined _ -> incr bad | _ -> ());
        Printf.printf "%s: %s\n" fn.Func.name (Ub_backend.Tv.verdict_to_string v))
      funcs;
    if !bad > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "tv"
       ~doc:"Translation-validate IR functions against their compiled MIR: \
             enumerate the behaviours of both and check that every machine \
             behaviour is covered by a source behaviour.")
    Term.(const run $ trace_arg $ mode_arg $ inject $ gen $ seed $ file)

let run_cmd =
  let entry =
    Arg.(value & opt string "main" & info [ "entry" ] ~docv:"F" ~doc:"Entry function.")
  in
  let run trace mode pipeline entry file =
    guard @@ fun () ->
    with_trace trace @@ fun () ->
    let m = load_module ~pipeline file in
    let fn = Func.find_func_exn m entry in
    let r = Ub_sem.Interp.run ~mode ~module_:m ~fuel:10_000_000 fn [] in
    Printf.printf "%s\n" (Ub_sem.Interp.outcome_to_string r.Ub_sem.Interp.outcome);
    0
  in
  Cmd.v (Cmd.info "run" ~doc:"Interpret a program under a semantics mode.")
    Term.(const run $ trace_arg $ mode_arg $ pipeline_arg $ entry $ file_arg)

let check_cmd =
  let tgt_arg =
    Arg.(value & pos 1 (some file) None
           & info [] ~docv:"TGT"
               ~doc:"Target function file. Omit it when FILE already holds both \
                     functions (source first, target second), e.g. a witness \
                     written by 'ubc hunt --corpus'.")
  in
  let run trace mode src tgt =
    guard @@ fun () ->
    with_trace trace @@ fun () ->
    let src, tgt =
      match tgt with
      | Some t ->
        let one p = List.hd (Parser.parse_module (read_file p)).Func.funcs in
        (one src, one t)
      | None -> (
        match (Parser.parse_module (read_file src)).Func.funcs with
        | src :: tgt :: _ -> (src, tgt)
        | _ ->
          raise
            (Usage
               "check: FILE must contain two functions (source, then target) when TGT is omitted"))
    in
    match Ub_refine.Checker.check mode ~src ~tgt with
    | Ub_refine.Checker.Refines ->
      print_endline "refines";
      0
    | v ->
      print_endline (Ub_refine.Checker.verdict_to_string v);
      1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Does TGT refine SRC under the given semantics mode?")
    Term.(const run $ trace_arg $ mode_arg $ file_arg $ tgt_arg)

let reduce_cmd =
  let tgt_arg =
    Arg.(value & pos 1 (some file) None
           & info [] ~docv:"TGT"
               ~doc:"Target function file. Omit it when FILE already holds both \
                     functions (source first, target second), e.g. a witness \
                     written by 'bench --corpus'.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
           & info [ "o" ] ~docv:"OUT" ~doc:"Also write the minimized witness module to $(docv).")
  in
  let run trace mode file tgt out =
    guard @@ fun () ->
    with_trace trace @@ fun () ->
    let src, tgt =
      match tgt with
      | Some t ->
        let one p = List.hd (Parser.parse_module (read_file p)).Func.funcs in
        (one file, one t)
      | None -> (
        match (Parser.parse_module (read_file file)).Func.funcs with
        | src :: tgt :: _ -> (src, tgt)
        | _ ->
          raise
            (Usage
               "reduce: FILE must contain two functions (source, then target) when TGT is omitted"))
    in
    match Ub_refine.Reduce.minimize_cex mode ~src ~tgt with
    | None ->
      Printf.printf "nothing to reduce: pair is not a counterexample under %s (%s)\n"
        mode.Ub_sem.Mode.name
        (Ub_refine.Checker.verdict_to_string (Ub_refine.Checker.check mode ~src ~tgt));
      1
    | Some r ->
      let header =
        Printf.sprintf "; minimized counterexample\n; mode: %s\n; %s\n; verdict: %s\n\n"
          mode.Ub_sem.Mode.name
          (Format.asprintf "%a" Ub_shrink.Reduce.pp_stats r.Ub_refine.Reduce.stats)
          (Ub_refine.Checker.verdict_to_string r.Ub_refine.Reduce.verdict)
      in
      let text =
        Printer.func_to_string { r.Ub_refine.Reduce.red_src with Func.name = "src" }
        ^ "\n"
        ^ Printer.func_to_string { r.Ub_refine.Reduce.red_tgt with Func.name = "tgt" }
      in
      print_string (header ^ text);
      (match out with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (header ^ text);
        close_out oc);
      0
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Minimize a failing transform pair to a small counterexample witness.")
    Term.(const run $ trace_arg $ mode_arg $ file_arg $ tgt_arg $ out_arg)

let modes_cmd =
  let run () =
    List.iter (fun m -> print_endline (Ub_sem.Mode.describe m)) Ub_sem.Mode.all;
    0
  in
  Cmd.v (Cmd.info "modes" ~doc:"List the available semantics modes.") Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* serve: the long-lived refinement-checking daemon                    *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(required & opt (some string) None
         & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let jobs =
    Arg.(value & opt int 1
           & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Pool workers per batch (1 = in-process).")
  in
  let queue =
    Arg.(value & opt int 64
           & info [ "queue"; "queue-depth" ] ~docv:"N"
               ~doc:"Admission-control bound: requests beyond $(docv) waiting are \
                     answered 'overloaded' instead of buffered. Echoed (with --jobs) \
                     in the hello handshake so clients can size their windows.")
  in
  let batch =
    Arg.(value & opt int 32
           & info [ "batch" ] ~docv:"N" ~doc:"Max unique tasks dispatched per batch.")
  in
  let deadline =
    Arg.(value & opt (some float) None
           & info [ "deadline" ] ~docv:"S"
               ~doc:"Default per-request deadline in seconds, applied when a request \
                     does not carry its own.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
           & info [ "cache" ] ~docv:"DIR"
               ~doc:"Persist verdicts in $(docv) (journal backend: flock-guarded \
                     appends, safe under concurrent writers).")
  in
  let run trace socket jobs queue batch deadline cache_dir =
    guard @@ fun () ->
    with_trace trace @@ fun () ->
    if jobs < 1 then raise (Usage "serve: --jobs must be >= 1");
    if queue < 1 then raise (Usage "serve: --queue must be >= 1");
    if batch < 1 then raise (Usage "serve: --batch must be >= 1");
    register_cleanup socket;
    let cache = Option.map Ub_exec.Cache.open_journal cache_dir in
    let cfg =
      { (Ub_serve.Server.default_config ~socket_path:socket) with
        Ub_serve.Server.jobs;
        queue_limit = queue;
        batch_max = batch;
        default_deadline_s = deadline;
        cache;
        verbose = true;
      }
    in
    Ub_serve.Server.run cfg;
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent refinement-checking daemon on a Unix socket.")
    Term.(const run $ trace_arg $ socket_arg $ jobs $ queue $ batch $ deadline $ cache_dir)

(* ------------------------------------------------------------------ *)
(* fleet: N serve shards behind a consistent-hash router               *)
(* ------------------------------------------------------------------ *)

let fleet_cmd =
  let dir =
    Arg.(required & opt (some string) None
           & info [ "dir" ] ~docv:"DIR"
               ~doc:"Fleet home: shard sockets, per-shard journals, and fleet.json land \
                     here.")
  in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc:"Number of serve shards.")
  in
  let jobs =
    Arg.(value & opt int 1
           & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Pool workers per shard (1 = in-process).")
  in
  let queue =
    Arg.(value & opt int 256
           & info [ "queue"; "queue-depth" ] ~docv:"N"
               ~doc:"Admission-control bound per shard.")
  in
  let batch =
    Arg.(value & opt int 64
           & info [ "batch" ] ~docv:"N" ~doc:"Max unique tasks per shard batch.")
  in
  let deadline =
    Arg.(value & opt (some float) None
           & info [ "deadline" ] ~docv:"S"
               ~doc:"Default per-request deadline applied by every shard.")
  in
  let sync_interval =
    Arg.(value & opt float 2.0
           & info [ "sync-interval" ] ~docv:"S"
               ~doc:"Seconds between journal replication rounds (shards -> aggregate -> \
                     shards).")
  in
  let no_restart =
    Arg.(value & flag
           & info [ "no-restart" ] ~doc:"Do not respawn crashed shards.")
  in
  let shard_traces =
    Arg.(value & flag
           & info [ "shard-traces" ]
               ~doc:"Write one JSONL trace per shard under DIR (trace-K.jsonl).")
  in
  let run trace dir shards jobs queue batch deadline sync_interval no_restart shard_traces =
    guard @@ fun () ->
    with_trace trace @@ fun () ->
    if shards < 1 then raise (Usage "fleet: --shards must be >= 1");
    if jobs < 1 then raise (Usage "fleet: --jobs must be >= 1");
    if queue < 1 then raise (Usage "fleet: --queue must be >= 1");
    if sync_interval <= 0.0 then raise (Usage "fleet: --sync-interval must be > 0");
    let cfg =
      { (Ub_serve.Fleet.default_config ~dir) with
        Ub_serve.Fleet.shards;
        jobs;
        queue_limit = queue;
        batch_max = batch;
        default_deadline_s = deadline;
        sync_interval_s = sync_interval;
        restart = not no_restart;
        trace = shard_traces;
        verbose = true;
      }
    in
    Ub_serve.Fleet.run cfg;
    0
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Run N refinement-checking shards behind a consistent-hash router, with \
             supervised restarts and replicated verdict journals.")
    Term.(const run $ trace_arg $ dir $ shards $ jobs $ queue $ batch $ deadline
          $ sync_interval $ no_restart $ shard_traces)

(* ------------------------------------------------------------------ *)
(* submit: query a running daemon                                      *)
(* ------------------------------------------------------------------ *)

let describe_reply (r : Ub_serve.Wire.reply) : string =
  match r with
  | Ub_serve.Wire.Verdict v -> (
    let flags =
      (if v.Ub_serve.Wire.cached then " [cached]" else "")
      ^ if v.Ub_serve.Wire.coalesced then " [coalesced]" else ""
    in
    match v.Ub_serve.Wire.verdict with
    | "refines" -> "refines" ^ flags
    | "counterexample" ->
      Printf.sprintf "COUNTEREXAMPLE args=(%s): %s%s"
        (String.concat ", " v.Ub_serve.Wire.args)
        v.Ub_serve.Wire.detail flags
    | "timeout" -> "timeout: " ^ v.Ub_serve.Wire.detail ^ flags
    | "crashed" -> "crashed: " ^ v.Ub_serve.Wire.detail ^ flags
    | other -> other ^ ": " ^ v.Ub_serve.Wire.detail ^ flags)
  | Ub_serve.Wire.Overloaded { queue_depth; queue_limit; _ } ->
    Printf.sprintf "overloaded: queue %d/%d" queue_depth queue_limit
  | Ub_serve.Wire.Error_r { message; _ } -> "error: " ^ message
  | Ub_serve.Wire.Hello_ok _ -> "hello_ok"
  | Ub_serve.Wire.Stats_r _ -> "stats"
  | Ub_serve.Wire.Bye -> "bye"

(* 0 only when every reply is a clean "refines"; any other verdict
   (counterexample, unknown, timeout, overload) is a verdict failure. *)
let reply_code (r : Ub_serve.Wire.reply) : int =
  match r with
  | Ub_serve.Wire.Verdict { verdict = "refines"; _ } -> 0
  | Ub_serve.Wire.Verdict _ | Ub_serve.Wire.Overloaded _ -> 1
  | Ub_serve.Wire.Error_r _ -> 3
  | _ -> 0

(* `--fleet SPEC`: a fleet directory (holding fleet.json), the
   fleet.json path itself, or a comma-separated shard socket list. *)
let fleet_sockets_of (what : string) (spec : string) : string list =
  match Ub_serve.Fleet.sockets_of_spec spec with
  | Ok sockets -> sockets
  | Error e -> raise (Usage (Printf.sprintf "%s: bad --fleet spec: %s" what e))

let submit_cmd =
  let files = Arg.(value & pos_all file [] & info [] ~docv:"FILE") in
  let socket_opt =
    Arg.(value & opt (some string) None
           & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket of a single daemon.")
  in
  let fleet =
    Arg.(value & opt (some string) None
           & info [ "fleet" ] ~docv:"SPEC"
               ~doc:"Submit to a shard fleet instead of one daemon: a fleet directory, \
                     its fleet.json, or a comma-separated socket list. Requests route \
                     by cache key with failover.")
  in
  let deadline =
    Arg.(value & opt (some float) None
           & info [ "deadline" ] ~docv:"S" ~doc:"Per-request deadline in seconds.")
  in
  let count =
    Arg.(value & opt int 1
           & info [ "count" ] ~docv:"N"
               ~doc:"Send the query $(docv) times, pipelined (coalescing/overload \
                     exercise).")
  in
  let enum =
    Arg.(value & flag & info [ "enum" ] ~doc:"Force the enumeration checker.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print the daemon's live stats report as JSON.")
  in
  let shutdown =
    Arg.(value & flag
           & info [ "shutdown" ] ~doc:"Ask the daemon to drain gracefully and exit.")
  in
  let run socket fleet mode deadline count enum stats shutdown files =
    guard @@ fun () ->
    let func_text path =
      match (Parser.parse_module (read_file path)).Func.funcs with
      | f :: _ -> Printer.func_to_string f
      | [] -> raise (Usage (Printf.sprintf "submit: %s holds no function" path))
      | exception e ->
        raise (Usage (Printf.sprintf "submit: cannot parse %s: %s" path (Printexc.to_string e)))
    in
    match (socket, fleet) with
    | None, None -> raise (Usage "submit: need --socket PATH or --fleet SPEC")
    | Some _, Some _ -> raise (Usage "submit: --socket and --fleet are mutually exclusive")
    | None, Some spec ->
      let sockets = fleet_sockets_of "submit" spec in
      let fl = Ub_serve.Client.Fleet.make ~client:"ubc-submit" sockets in
      Fun.protect ~finally:(fun () -> Ub_serve.Client.Fleet.close fl) @@ fun () ->
      if stats then begin
        match Ub_serve.Client.Fleet.stats fl with
        | [] -> raise (Ub_serve.Client.Server_error "no fleet shard reachable")
        | per ->
          print_endline (Ub_serve.Json.to_string (Ub_serve.Fleet.merge_stats per));
          0
      end
      else if shutdown then begin
        Ub_serve.Client.Fleet.shutdown_all fl;
        0
      end
      else begin
        if count < 1 then raise (Usage "submit: --count must be >= 1");
        let pair =
          match files with
          | [ src; tgt ] -> (func_text src, func_text tgt)
          | [ one ] -> (
            (* the fleet client speaks src/tgt checks only: split the
               two-function witness module client-side *)
            match (Parser.parse_module (read_file one)).Func.funcs with
            | s :: t :: _ -> (Printer.func_to_string s, Printer.func_to_string t)
            | _ ->
              raise (Usage (Printf.sprintf "submit: %s must hold two functions" one))
            | exception e ->
              raise
                (Usage
                   (Printf.sprintf "submit: cannot parse %s: %s" one (Printexc.to_string e))))
          | _ -> raise (Usage "submit: expected SRC.ll TGT.ll, or one two-function FILE.ll")
        in
        let tagged =
          Ub_serve.Client.Fleet.check_batch_tagged fl ?deadline_s:deadline ~enum_only:enum
            ~mode:mode.Ub_sem.Mode.name
            (Array.make count pair)
        in
        let code = ref 0 in
        Array.iter
          (fun (r, tag) ->
            print_endline (describe_reply r ^ " @" ^ tag);
            code := max !code (reply_code r))
          tagged;
        !code
      end
    | Some socket, None ->
    let with_client f = Ub_serve.Client.with_conn ~socket_path:socket f in
    if stats then begin
      with_client (fun cl ->
          let s = Ub_serve.Client.stats cl in
          print_endline
            (Ub_serve.Json.to_string (Ub_serve.Wire.reply_to_json (Ub_serve.Wire.Stats_r s))));
      0
    end
    else if shutdown then begin
      let cl = Ub_serve.Client.connect ~socket_path:socket () in
      Ub_serve.Client.shutdown cl;
      0
    end
    else begin
      if count < 1 then raise (Usage "submit: --count must be >= 1");
      let func_text path =
        match (Parser.parse_module (read_file path)).Func.funcs with
        | f :: _ -> Printer.func_to_string f
        | [] -> raise (Usage (Printf.sprintf "submit: %s holds no function" path))
        | exception e ->
          raise (Usage (Printf.sprintf "submit: cannot parse %s: %s" path (Printexc.to_string e)))
      in
      let request i =
        match files with
        | [ src; tgt ] ->
          let cr =
            { Ub_serve.Wire.id = Some i;
              mode = mode.Ub_sem.Mode.name;
              src = func_text src;
              tgt = func_text tgt;
              deadline_s = deadline;
              enum_only = enum;
            }
          in
          if enum then Ub_serve.Wire.Enum_check cr else Ub_serve.Wire.Check cr
        | [ pair ] ->
          if enum then raise (Usage "submit: --enum needs SRC and TGT files");
          Ub_serve.Wire.Check_pair
            { id = Some i;
              mode = mode.Ub_sem.Mode.name;
              module_text = read_file pair;
              deadline_s = deadline;
            }
        | _ -> raise (Usage "submit: expected SRC.ll TGT.ll, or one two-function FILE.ll")
      in
      with_client (fun cl ->
          (* pipeline the whole burst, then read every reply *)
          for i = 0 to count - 1 do
            Ub_serve.Client.send cl (request i)
          done;
          let code = ref 0 in
          for _ = 1 to count do
            match Ub_serve.Client.recv cl with
            | None -> raise (Ub_serve.Client.Server_error "server closed mid-burst")
            | Some r ->
              print_endline (describe_reply r);
              code := max !code (reply_code r)
          done;
          !code)
    end
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit refinement queries to a running 'ubc serve' daemon.")
    Term.(const run $ socket_opt $ fleet $ mode_arg $ deadline $ count $ enum $ stats
          $ shutdown $ files)

(* ------------------------------------------------------------------ *)
(* hunt: the miscompile hunting farm                                    *)
(* ------------------------------------------------------------------ *)

let hunt_cmd =
  let entries =
    Arg.(value & opt_all string []
           & info [ "entry" ] ~docv:"NAME"
               ~doc:"Run an isolated recall campaign for this injected-bug catalog \
                     entry (repeatable; see lib/opt/inject.ml). The campaign must \
                     rediscover the entry or the command fails.")
  in
  let all_entries =
    Arg.(value & flag
           & info [ "all-entries" ]
               ~doc:"Run a recall campaign for every catalog entry.")
  in
  let seed =
    Arg.(value & opt int 20170601
           & info [ "seed" ] ~docv:"N" ~doc:"Base PRNG seed (program i uses seed+i).")
  in
  let programs =
    Arg.(value & opt int 200
           & info [ "programs" ] ~docv:"N" ~doc:"Program budget per campaign.")
  in
  let jobs =
    Arg.(value & opt int 1
           & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Pool workers (1 = in-process).")
  in
  let timeout =
    Arg.(value & opt (some float) None
           & info [ "timeout" ] ~docv:"S" ~doc:"Per-program pool timeout in seconds.")
  in
  let stop_after =
    Arg.(value & opt (some int) None
           & info [ "stop-after" ] ~docv:"N"
               ~doc:"Stop a campaign early after $(docv) raw findings.")
  in
  let corpus =
    Arg.(value & opt (some string) None
           & info [ "corpus" ] ~docv:"DIR"
               ~doc:"Write one re-parsable witness .ll per unique finding into \
                     $(docv) (replay with 'ubc check --mode <mode> <file>').")
  in
  let out =
    Arg.(value & opt (some string) None
           & info [ "out" ] ~docv:"FILE" ~doc:"Write the campaign reports as JSON to $(docv).")
  in
  let socket =
    Arg.(value & opt (some string) None
           & info [ "socket" ] ~docv:"PATH"
               ~doc:"Route refinement checks through the 'ubc serve' daemon at $(docv) \
                     instead of checking in-process.")
  in
  let deadline =
    Arg.(value & opt (some float) None
           & info [ "deadline" ] ~docv:"S" ~doc:"Per-request daemon deadline in seconds.")
  in
  let batch =
    Arg.(value & opt int 32
           & info [ "batch" ] ~docv:"N" ~doc:"Pipelined daemon requests per round trip.")
  in
  let fleet =
    Arg.(value & opt (some string) None
           & info [ "fleet" ] ~docv:"SPEC"
               ~doc:"Route checks across a shard fleet: a fleet directory, its \
                     fleet.json, or a comma-separated socket list. Drop reasons in the \
                     campaign accounting are tagged with the shard that caused them.")
  in
  let fleet_shards =
    Arg.(value & opt (some int) None
           & info [ "shards" ] ~docv:"N"
               ~doc:"Spawn a local $(docv)-shard fleet for the campaign's duration and \
                     route checks across it.")
  in
  let run trace mode entries all_entries seed programs jobs timeout stop_after corpus out
      socket deadline batch fleet fleet_shards =
    guard @@ fun () ->
    with_trace trace @@ fun () ->
    if programs < 1 then raise (Usage "hunt: --programs must be >= 1");
    if jobs < 1 then raise (Usage "hunt: --jobs must be >= 1");
    if batch < 1 then raise (Usage "hunt: --batch must be >= 1");
    let spawned = ref None in
    let remote =
      match (socket, fleet, fleet_shards) with
      | Some _, Some _, _ | Some _, _, Some _ | _, Some _, Some _ ->
        raise (Usage "hunt: --socket, --fleet and --shards are mutually exclusive")
      | Some s, None, None ->
        Some
          { (Ub_hunt.Hunt.default_remote ~socket:s) with
            Ub_hunt.Hunt.deadline_s = deadline;
            batch;
          }
      | None, Some spec, None ->
        let sockets = fleet_sockets_of "hunt" spec in
        Some
          { (Ub_hunt.Hunt.fleet_remote ~sockets) with
            Ub_hunt.Hunt.deadline_s = deadline;
            batch;
          }
      | None, None, Some n ->
        if n < 1 then raise (Usage "hunt: --shards must be >= 1");
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "ubc-hunt-fleet-%d" (Unix.getpid ()))
        in
        let fcfg =
          { (Ub_serve.Fleet.default_config ~dir) with Ub_serve.Fleet.shards = n }
        in
        let h = Ub_serve.Fleet.spawn_local fcfg in
        spawned := Some (h, dir);
        Some
          { (Ub_hunt.Hunt.fleet_remote ~sockets:(Ub_serve.Fleet.handle_sockets h)) with
            Ub_hunt.Hunt.deadline_s = deadline;
            batch;
          }
      | None, None, None -> None
    in
    Fun.protect
      ~finally:(fun () ->
        match !spawned with
        | Some (h, dir) ->
          Ub_serve.Fleet.stop_local h;
          rm_rf dir
        | None -> ())
    @@ fun () ->
    let entry_list =
      if all_entries then Ub_opt.Inject.all
      else
        List.map
          (fun n ->
            match Ub_opt.Inject.find n with
            | Some e -> e
            | None ->
              raise
                (Usage
                   (Printf.sprintf "hunt: unknown --entry %S\nvalid entries: %s" n
                      (String.concat ", " Ub_opt.Inject.names))))
          entries
    in
    let finalize (cfg : Ub_hunt.Hunt.config) =
      { cfg with Ub_hunt.Hunt.jobs; timeout_s = timeout; stop_after }
    in
    (* (campaign name, must_find, report) *)
    let results =
      match entry_list with
      | [] ->
        (* no entries: hunt the real prototype pipeline under --mode;
           any unique finding here is a live miscompilation *)
        let base = Ub_hunt.Hunt.clean_config ~seed ~programs in
        let cfg =
          finalize
            { base with
              Ub_hunt.Hunt.lanes = [ Ub_hunt.Hunt.fuzz_lane Ub_opt.Pass.prototype mode ];
            }
        in
        [ ("fuzz/" ^ mode.Ub_sem.Mode.name, false, Ub_hunt.Hunt.run ?remote cfg) ]
      | es ->
        List.map
          (fun (e : Ub_opt.Inject.entry) ->
            let cfg = finalize (Ub_hunt.Hunt.entry_config ~seed ~programs e) in
            (e.Ub_opt.Inject.name, true, Ub_hunt.Hunt.run ?remote cfg))
          es
    in
    List.iter
      (fun (name, _, rep) ->
        Format.printf "%s: %a@." name Ub_hunt.Hunt.pp_report rep;
        List.iter
          (fun (f : Ub_hunt.Hunt.finding) ->
            Format.printf "  %s %s (%d -> %d insns, %s)@."
              (String.sub f.Ub_hunt.Hunt.fp 0 12)
              f.Ub_hunt.Hunt.f_lane f.Ub_hunt.Hunt.orig_insns f.Ub_hunt.Hunt.final_insns
              f.Ub_hunt.Hunt.f_verdict)
          rep.Ub_hunt.Hunt.r_uniques)
      results;
    (match corpus with
    | None -> ()
    | Some dir ->
      List.iter
        (fun (name, _, rep) ->
          let sub = Filename.concat dir (Ub_hunt.Hunt.sanitize name) in
          let paths = Ub_hunt.Hunt.write_corpus ~dir:sub rep in
          Printf.printf "wrote %d witness file(s) under %s\n" (List.length paths) sub)
        results);
    (match out with
    | None -> ()
    | Some path ->
      let json =
        Ub_serve.Json.Obj
          (List.map
             (fun (name, _, rep) -> (name, Ub_hunt.Hunt.report_json rep))
             results)
      in
      let oc = open_out path in
      output_string oc (Ub_serve.Json.to_string json);
      output_string oc "\n";
      close_out oc;
      Printf.printf "wrote %s\n" path);
    let missed =
      List.filter (fun (_, must, r) -> must && r.Ub_hunt.Hunt.r_unique = 0) results
    in
    let live =
      List.filter (fun (_, must, r) -> (not must) && r.Ub_hunt.Hunt.r_unique > 0) results
    in
    List.iter
      (fun (n, _, _) -> Printf.printf "RECALL MISS: %s not rediscovered\n" n)
      missed;
    List.iter
      (fun (n, _, (r : Ub_hunt.Hunt.report)) ->
        Printf.printf "MISCOMPILE: %s produced %d unique finding(s)\n" n
          r.Ub_hunt.Hunt.r_unique)
      live;
    if missed <> [] || live <> [] then 1 else 0
  in
  Cmd.v
    (Cmd.info "hunt"
       ~doc:"Hunt for silent miscompiles: stream generated programs through \
             optimization lanes, check refinement, shrink and fingerprint failures.")
    Term.(const run $ trace_arg $ mode_arg $ entries $ all_entries $ seed $ programs
          $ jobs $ timeout $ stop_after $ corpus $ out $ socket $ deadline $ batch
          $ fleet $ fleet_shards)

let () =
  install_signal_cleanup ();
  let info = Cmd.info "ubc" ~doc:"The taming-undefined-behavior compiler driver." in
  let group =
    Cmd.group info
      [ compile_cmd; tv_cmd; run_cmd; check_cmd; reduce_cmd; serve_cmd; fleet_cmd;
        submit_cmd; hunt_cmd; modes_cmd ]
  in
  (* Uniform exit codes: command bodies return 0/1 (and [guard] maps
     usage -> 2, internal -> 3); cmdliner's own CLI errors are usage. *)
  let code =
    match Cmd.eval_value group with
    | Ok (`Ok n) -> n
    | Ok (`Help | `Version) -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 3
  in
  exit code
