(* Reproduce the Section 3.3 end-to-end miscompilation: loop unswitching
   (assuming branch-on-poison is a nondeterministic choice) composed with
   GVN (assuming branch-on-poison is UB) — each defensible alone, their
   composition wrong under ANY single semantics.  The freeze fix repairs
   it.

   Run with:  dune exec examples/miscompile.exe *)

open Ub_ir
open Ub_sem
open Ub_refine

let src =
  Parser.parse_func_string
    {|define i2 @f(i1 %c, i1 %c2) {
e:
  br i1 %c, label %body, label %exit
body:
  br i1 %c2, label %t, label %u
t:
  ret i2 1
u:
  ret i2 2
exit:
  ret i2 0
}|}

let unswitched =
  Parser.parse_func_string
    {|define i2 @f(i1 %c, i1 %c2) {
e:
  br i1 %c2, label %vt, label %vf
vt:
  br i1 %c, label %t, label %exit
vf:
  br i1 %c, label %u, label %exit
t:
  ret i2 1
u:
  ret i2 2
exit:
  ret i2 0
}|}

let unswitched_frozen =
  Parser.parse_func_string
    {|define i2 @f(i1 %c, i1 %c2) {
e:
  %fc2 = freeze i1 %c2
  br i1 %fc2, label %vt, label %vf
vt:
  br i1 %c, label %t, label %exit
vf:
  br i1 %c, label %u, label %exit
t:
  ret i2 1
u:
  ret i2 2
exit:
  ret i2 0
}|}

let check name mode src tgt =
  Printf.printf "  %-26s under %-15s: %s\n" name mode.Mode.name
    (Checker.verdict_to_string (Checker.check mode ~src ~tgt))

let () =
  print_endline "Loop unswitching hoists the inner branch out of the (possibly";
  print_endline "zero-trip) loop.  Is that a refinement?\n";
  check "raw unswitching" Mode.old_unswitch src unswitched;
  check "raw unswitching" Mode.old_gvn src unswitched;
  check "raw unswitching" Mode.proposed src unswitched;
  print_endline "";
  print_endline "GVN's predicate propagation (foo(w) => foo(y) under t==y):\n";
  let gvn_src =
    Parser.parse_func_string
      {|define void @g(i2 %x, i2 %y) {
e:
  %t = add i2 %x, 1
  %cmp = icmp eq i2 %t, %y
  br i1 %cmp, label %then, label %out
then:
  %w = add i2 %x, 1
  call void @foo(i2 %w)
  br label %out
out:
  ret void
}|}
  in
  let gvn_tgt = Ub_opt.Gvn.pass.Ub_opt.Pass.run Ub_opt.Pass.prototype gvn_src in
  check "GVN substitution" Mode.old_unswitch gvn_src gvn_tgt;
  check "GVN substitution" Mode.proposed gvn_src gvn_tgt;
  print_endline "";
  print_endline "No old semantics accepts both:  branch-on-poison must be";
  print_endline "nondeterministic for unswitching but UB for GVN.  Section 5.1's";
  print_endline "freeze fix makes unswitching a refinement even when branching on";
  print_endline "poison is UB:\n";
  check "FROZEN unswitching" Mode.proposed src unswitched_frozen;
  print_endline "";
  (* and the pass implements exactly that *)
  let loop_src =
    Parser.parse_func_string
      {|define void @h(i8 %n, i1 %c2) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %latch ]
  %c = icmp slt i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  br i1 %c2, label %t, label %e2
t:
  call void @foo(i8 %i)
  br label %latch
e2:
  call void @bar(i8 %i)
  br label %latch
latch:
  %i1 = add nsw i8 %i, 1
  br label %head
exit:
  ret void
}|}
  in
  let proto = Ub_opt.Loop_unswitch.pass.Ub_opt.Pass.run Ub_opt.Pass.prototype loop_src in
  Printf.printf "the prototype loop-unswitch pass emits %d freeze instruction(s)\n"
    (Func.num_freeze proto);
  let inputs =
    [ [ Value.of_int ~width:8 0; Value.Scalar Value.Poison ];
      [ Value.of_int ~width:8 2; Value.Scalar Value.Poison ];
      [ Value.of_int ~width:8 2; Value.bool true ];
    ]
  in
  match Checker.check ~inputs Mode.proposed ~src:loop_src ~tgt:proto with
  | Checker.Refines -> print_endline "and the unswitched loop refines the original.  QED."
  | v -> Printf.printf "unexpected: %s\n" (Checker.verdict_to_string v)
