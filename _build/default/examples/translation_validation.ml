(* Translation validation in the style of the paper's Section 6: run the
   optimizer pass by pass on a function and check each step with the
   refinement checker, under both the legacy and the prototype
   configurations.

   Run with:  dune exec examples/translation_validation.exe *)

open Ub_ir
open Ub_sem
open Ub_opt

let src =
  Parser.parse_func_string
    {|define i2 @f(i1 %c, i2 %x) {
e:
  %sel = select i1 %c, i1 true, i1 %c
  %m = mul i2 %x, 2
  %z = add i2 %m, 0
  br i1 %sel, label %t, label %u
t:
  ret i2 %z
u:
  ret i2 3
}|}

let validate_pipeline name cfg mode =
  Printf.printf "=== %s pipeline, checked under %s ===\n" name mode.Mode.name;
  let steps = [ Instcombine.pass; Constant_fold.pass; Gvn.pass; Sccp.pass; Dce.pass ] in
  let _ =
    List.fold_left
      (fun cur (p : Pass.t) ->
        let next = p.Pass.run cfg cur in
        if next = cur then begin
          Printf.printf "  %-14s (no change)\n" p.Pass.name;
          next
        end
        else begin
          let verdict = Ub_refine.Checker.check mode ~src:cur ~tgt:next in
          Printf.printf "  %-14s %s\n" p.Pass.name
            (Ub_refine.Checker.verdict_to_string verdict);
          next
        end)
      src steps
  in
  print_endline ""

let () =
  print_string (Printer.func_to_string src);
  print_endline "";
  (* the prototype is sound under the proposed semantics *)
  validate_pipeline "prototype" Pass.prototype Mode.proposed;
  (* the legacy pipeline contains Section 3.4's select->or rewrite, which
     the checker catches under the proposed semantics *)
  validate_pipeline "legacy" Pass.legacy Mode.proposed;
  print_endline "The legacy InstCombine step is exactly the select->arithmetic";
  print_endline "rewrite of Section 3.4 — sound only in the Select_arith reading,";
  print_endline "caught by the checker under the proposed semantics."
