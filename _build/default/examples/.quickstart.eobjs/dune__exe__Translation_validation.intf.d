examples/translation_validation.mli:
