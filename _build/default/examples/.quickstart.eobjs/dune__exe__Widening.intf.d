examples/widening.mli:
