examples/translation_validation.ml: Constant_fold Dce Gvn Instcombine List Mode Parser Pass Printer Printf Sccp Ub_ir Ub_opt Ub_refine Ub_sem
