examples/bitfields.mli:
