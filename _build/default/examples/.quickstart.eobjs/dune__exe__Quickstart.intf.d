examples/quickstart.mli:
