examples/widening.ml: Interp Mode Parser Printer Printf Ub_backend Ub_ir Ub_opt Ub_refine Ub_sem Value
