examples/miscompile.mli:
