examples/bitfields.ml: Func Interp List Mode Printer Printf Ub_ir Ub_minic Ub_sem
