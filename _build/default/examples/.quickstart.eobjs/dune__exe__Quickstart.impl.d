examples/quickstart.ml: Builder Instr Interp Mode Parser Printer Printf Types Ub_backend Ub_ir Ub_opt Ub_refine Ub_sem Ub_support Value
