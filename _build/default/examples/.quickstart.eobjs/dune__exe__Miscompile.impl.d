examples/miscompile.ml: Checker Func Mode Parser Printf Ub_ir Ub_opt Ub_refine Ub_sem Value
