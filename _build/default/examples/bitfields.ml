(* The Section 5.3 bit-field story, end to end.

   A bit-field store is load+mask+or+store of the container word.  The
   first store reads uninitialized (poison) memory; without freeze the
   whole word — including the neighbouring fields — becomes poison.

   Run with:  dune exec examples/bitfields.exe *)

open Ub_ir
open Ub_sem

let src =
  {|
struct packet {
  int version : 4;
  int flags   : 6;
  int length  : 12;
};
int main() {
  struct packet p;
  p.version = 4;
  p.flags = 33;
  p.length = 1500;
  return p.version + p.flags * 10 + p.length * 1000;
}
|}

let () =
  print_endline "Mini-C source:";
  print_endline src;
  let show name cfg mode =
    let m = Ub_minic.Lower.compile ~cfg src in
    let fn = Func.find_func_exn m "main" in
    let r = Interp.run ~mode ~module_:m fn [] in
    Printf.printf "%-45s -> %s\n" name (Interp.outcome_to_string r.Interp.outcome)
  in
  show "legacy Clang, old (undef) semantics" Ub_minic.Lower.clang_legacy Mode.old_unswitch;
  show "legacy Clang, PROPOSED semantics (the bug!)" Ub_minic.Lower.clang_legacy Mode.proposed;
  show "fixed Clang (freeze), proposed semantics" Ub_minic.Lower.clang_fixed Mode.proposed;
  (* show the lowered store sequence *)
  let m = Ub_minic.Lower.compile ~cfg:Ub_minic.Lower.clang_fixed src in
  let fn = Func.find_func_exn m "main" in
  print_endline "\nThe fixed lowering of the first bit-field store (note the freeze):";
  let entry = Func.entry fn in
  List.iteri
    (fun i n -> if i >= 2 && i <= 9 then Printf.printf "  %s\n" (Printer.insn_to_string n))
    entry.Func.insns;
  Printf.printf "\nfreeze instructions emitted: %d (one per bit-field store)\n"
    (Func.num_freeze fn)
