(* Quickstart: build IR with the builder API, print it, interpret it
   under two semantics, optimize it, and compile it to assembly.

   Run with:  dune exec examples/quickstart.exe *)

open Ub_ir
open Ub_sem

let () =
  (* 1. Build the Section 2.4 example: a+b > a, with nsw *)
  let b = Builder.create ~name:"example" ~args:[ ("a", Types.i32); ("b", Types.i32) ]
      ~ret_ty:(Types.Int 1) () in
  Builder.start_block b "entry";
  let add = Builder.add ~attrs:Instr.nsw_only b Types.i32 (Instr.Var "a") (Instr.Var "b") in
  let cmp = Builder.icmp b Instr.Sgt Types.i32 add (Instr.Var "a") in
  Builder.ret b (Types.Int 1) cmp;
  let fn = Builder.finish_validated b in
  Printf.printf "=== the IR ===\n%s\n" (Printer.func_to_string fn);

  (* 2. Interpret: overflow makes the comparison poison *)
  let run args mode =
    Interp.outcome_to_string (Interp.run ~mode fn args).Interp.outcome
  in
  let vi i = Value.of_int ~width:32 i in
  Printf.printf "example(3, 4)        = %s\n" (run [ vi 3; vi 4 ] Mode.proposed);
  Printf.printf "example(INT_MAX, 1)  = %s   (nsw overflow -> poison)\n"
    (run [ Value.of_bitvec (Ub_support.Bitvec.max_signed 32); vi 1 ] Mode.proposed);

  (* 3. Optimize: InstCombine knows a+b>a <=> b>0 under poison semantics *)
  let opt = Ub_opt.Pipeline.run_o2_func Ub_opt.Pass.prototype fn in
  Printf.printf "\n=== after -O2 (prototype pipeline) ===\n%s\n" (Printer.func_to_string opt);

  (* 4. Validate the whole pipeline with the refinement checker (at a
     narrower width so the SAT query stays trivial) *)
  let narrow =
    Parser.parse_func_string
      {|define i1 @f(i8 %a, i8 %b) {
e:
  %add = add nsw i8 %a, %b
  %cmp = icmp sgt i8 %add, %a
  ret i1 %cmp
}|}
  in
  let narrow_opt = Ub_opt.Pipeline.run_o2_func Ub_opt.Pass.prototype narrow in
  Printf.printf "checker: optimized refines original? %s\n"
    (Ub_refine.Checker.verdict_to_string
       (Ub_refine.Checker.check Mode.proposed ~src:narrow ~tgt:narrow_opt));

  (* 5. Compile to machine code *)
  let compiled = Ub_backend.Compile.compile_func opt in
  Printf.printf "\n=== assembly (%d bytes) ===\n%s" compiled.Ub_backend.Compile.obj_size
    compiled.Ub_backend.Compile.asm
