(* Figure 3: induction-variable widening.  The sext inside the loop costs
   one instruction per iteration; widening the IV to 64 bits removes it.
   The transformation is justified ONLY because nsw overflow is poison.

   Run with:  dune exec examples/widening.exe *)

open Ub_ir
open Ub_sem

let src =
  Parser.parse_func_string
    {|define i64 @store_loop(i32 %n, i64 %acc) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %a = phi i64 [ %acc, %entry ], [ %a1, %body ]
  %c = icmp sle i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %iext = sext i32 %i to i64
  %a1 = add i64 %a, %iext
  %i1 = add nsw i32 %i, 1
  br label %head
exit:
  ret i64 %a
}|}

let () =
  print_endline "=== before widening ===";
  print_string (Printer.func_to_string src);
  let widened = Ub_opt.Indvar_widen.pass.Ub_opt.Pass.run Ub_opt.Pass.prototype src in
  let widened = Ub_opt.Dce.pass.Ub_opt.Pass.run Ub_opt.Pass.prototype widened in
  print_endline "\n=== after widening (no sext in the loop body) ===";
  print_string (Printer.func_to_string widened);
  (* same behaviour *)
  let run fn =
    Interp.outcome_to_string
      (Interp.run fn [ Value.of_int ~width:32 100; Value.of_int ~width:64 0 ]).Interp.outcome
  in
  Printf.printf "\nsum 0..100: before = %s, after = %s\n" (run src) (run widened);
  (* cost: simulated cycles per machine *)
  let cycles fn =
    let c = Ub_backend.Compile.compile_func fn in
    let r = Interp.run fn [ Value.of_int ~width:32 100; Value.of_int ~width:64 0 ] in
    Ub_backend.Compile.simulate_cycles Ub_backend.Target.machine1 c
      ~profile:r.Interp.block_counts
  in
  let before = cycles src and after = cycles widened in
  Printf.printf "simulated cycles: %.0f -> %.0f  (%.1f%% faster; the paper reports up to 39%%)\n"
    before after
    ((before -. after) /. before *. 100.0);
  (* soundness: justified by nsw=poison, NOT by wrapping add *)
  let narrow_nsw =
    Parser.parse_func_string
      {|define i4 @f(i2 %i) {
e:
  %i1 = add nsw i2 %i, 1
  %w = sext i2 %i1 to i4
  ret i4 %w
}|}
  in
  let narrow_widened =
    Parser.parse_func_string
      {|define i4 @f(i2 %i) {
e:
  %iw = sext i2 %i to i4
  %w = add nsw i4 %iw, 1
  ret i4 %w
}|}
  in
  Printf.printf "\nchecker, nsw IV:      %s\n"
    (Ub_refine.Checker.verdict_to_string
       (Ub_refine.Checker.check Mode.proposed ~src:narrow_nsw ~tgt:narrow_widened));
  let narrow_wrap =
    Parser.parse_func_string
      {|define i4 @f(i2 %i) {
e:
  %i1 = add i2 %i, 1
  %w = sext i2 %i1 to i4
  ret i4 %w
}|}
  in
  Printf.printf "checker, wrapping IV: %s\n"
    (Ub_refine.Checker.verdict_to_string
       (Ub_refine.Checker.check Mode.proposed ~src:narrow_wrap ~tgt:narrow_widened))
