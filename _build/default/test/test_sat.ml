(* The CDCL solver: unit cases and exhaustive cross-checking against
   brute force on random instances. *)

open Ub_sat

let brute nvars clauses =
  let n = 1 lsl nvars in
  let rec try_ i =
    if i >= n then None
    else begin
      let model = Array.init nvars (fun v -> (i lsr v) land 1 = 1) in
      if Solver.model_satisfies model clauses then Some model else try_ (i + 1)
    end
  in
  try_ 0

let unit_tests =
  [ Alcotest.test_case "trivially sat" `Quick (fun () ->
        match Solver.solve_clauses ~nvars:2 [ [ Solver.pos 0 ]; [ Solver.neg 1 ] ] with
        | Solver.Sat m ->
          Alcotest.(check bool) "v0" true m.(0);
          Alcotest.(check bool) "v1" false m.(1)
        | Solver.Unsat -> Alcotest.fail "should be sat");
    Alcotest.test_case "trivially unsat" `Quick (fun () ->
        match Solver.solve_clauses ~nvars:1 [ [ Solver.pos 0 ]; [ Solver.neg 0 ] ] with
        | Solver.Unsat -> ()
        | Solver.Sat _ -> Alcotest.fail "should be unsat");
    Alcotest.test_case "empty clause unsat" `Quick (fun () ->
        match Solver.solve_clauses ~nvars:1 [ [] ] with
        | Solver.Unsat -> ()
        | Solver.Sat _ -> Alcotest.fail "should be unsat");
    Alcotest.test_case "pigeonhole 3->2 unsat" `Quick (fun () ->
        (* pigeon i in hole j: var 2i+j, i<3, j<2 *)
        let v i j = Solver.pos ((2 * i) + j) in
        let nv i j = Solver.neg ((2 * i) + j) in
        let clauses =
          [ [ v 0 0; v 0 1 ]; [ v 1 0; v 1 1 ]; [ v 2 0; v 2 1 ] ]
          @ List.concat_map
              (fun j ->
                [ [ nv 0 j; nv 1 j ]; [ nv 0 j; nv 2 j ]; [ nv 1 j; nv 2 j ] ])
              [ 0; 1 ]
        in
        match Solver.solve_clauses ~nvars:6 clauses with
        | Solver.Unsat -> ()
        | Solver.Sat _ -> Alcotest.fail "pigeonhole should be unsat");
    Alcotest.test_case "xor chain sat" `Quick (fun () ->
        (* x0 xor x1 = 1, x1 xor x2 = 1, x0 = 1 => x2 = 1 *)
        let xor1 a b =
          [ [ Solver.pos a; Solver.pos b ]; [ Solver.neg a; Solver.neg b ] ]
        in
        match
          Solver.solve_clauses ~nvars:3 ((xor1 0 1 @ xor1 1 2) @ [ [ Solver.pos 0 ] ])
        with
        | Solver.Sat m ->
          Alcotest.(check bool) "x2 follows" true m.(2);
          Alcotest.(check bool) "x1 follows" false m.(1)
        | Solver.Unsat -> Alcotest.fail "should be sat");
  ]

let random_cnf =
  QCheck2.Gen.(
    int_range 1 9 >>= fun nvars ->
    int_range 1 40 >>= fun nclauses ->
    let lit = map2 (fun v s -> if s then Solver.pos v else Solver.neg v) (int_bound (nvars - 1)) bool in
    let clause = list_size (int_range 1 4) lit in
    pair (return nvars) (list_size (return nclauses) clause))

let props =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"agrees with brute force" ~count:800 random_cnf
         (fun (nvars, clauses) ->
           match (Solver.solve_clauses ~nvars clauses, brute nvars clauses) with
           | Solver.Sat m, Some _ -> Solver.model_satisfies m clauses
           | Solver.Unsat, None -> true
           | Solver.Sat _, None | Solver.Unsat, Some _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"learned clauses don't break repeat solving" ~count:100
         random_cnf
         (fun (nvars, clauses) ->
           let r1 = Solver.solve_clauses ~nvars clauses in
           let r2 = Solver.solve_clauses ~nvars clauses in
           match (r1, r2) with
           | Solver.Sat _, Solver.Sat _ | Solver.Unsat, Solver.Unsat -> true
           | _ -> false));
  ]

let () = Alcotest.run "sat" [ ("unit", unit_tests); ("properties", props) ]
