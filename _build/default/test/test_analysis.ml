(* CFG, dominators, loops, known-bits, scalar evolution. *)

open Ub_ir
module A = Ub_analysis

let parse = Parser.parse_func_string

let diamond =
  parse
    {|define i8 @d(i1 %c) {
entry:
  br i1 %c, label %t, label %u
t:
  br label %m
u:
  br label %m
m:
  %x = phi i8 [ 1, %t ], [ 2, %u ]
  ret i8 %x
}|}

let loopy =
  parse
    {|define i32 @l(i32 %n, i64* %a) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %w = sext i32 %i to i64
  %i1 = add nsw i32 %i, 3
  br label %head
exit:
  ret i32 %i
}|}

let cfg_tests =
  [ Alcotest.test_case "rpo starts at entry" `Quick (fun () ->
        let cfg = A.Cfg.build diamond in
        Alcotest.(check string) "first" "entry" (List.hd (A.Cfg.reachable_blocks cfg)));
    Alcotest.test_case "succ/pred" `Quick (fun () ->
        let cfg = A.Cfg.build diamond in
        Alcotest.(check (list string)) "entry succs" [ "t"; "u" ] (A.Cfg.successors cfg "entry");
        Alcotest.(check (list string)) "m preds" [ "t"; "u" ]
          (List.sort compare (A.Cfg.predecessors cfg "m")));
    Alcotest.test_case "cycle detection" `Quick (fun () ->
        Alcotest.(check bool) "diamond acyclic" false (A.Cfg.has_cycle (A.Cfg.build diamond));
        Alcotest.(check bool) "loop cyclic" true (A.Cfg.has_cycle (A.Cfg.build loopy)));
  ]

let dom_tests =
  [ Alcotest.test_case "diamond dominators" `Quick (fun () ->
        let dom = A.Dom.of_func diamond in
        Alcotest.(check bool) "entry dom m" true (A.Dom.dominates dom "entry" "m");
        Alcotest.(check bool) "t !dom m" false (A.Dom.dominates dom "t" "m");
        Alcotest.(check (option string)) "idom m" (Some "entry") (A.Dom.idom dom "m");
        Alcotest.(check bool) "reflexive" true (A.Dom.dominates dom "t" "t"));
    Alcotest.test_case "loop dominators" `Quick (fun () ->
        let dom = A.Dom.of_func loopy in
        Alcotest.(check bool) "head dom body" true (A.Dom.dominates dom "head" "body");
        Alcotest.(check bool) "head dom exit" true (A.Dom.dominates dom "head" "exit");
        Alcotest.(check bool) "body !dom head" false (A.Dom.strictly_dominates dom "body" "head"));
    Alcotest.test_case "dominance frontier" `Quick (fun () ->
        let dom = A.Dom.of_func diamond in
        let df = A.Dom.frontiers dom in
        Alcotest.(check (list string)) "df(t) = {m}" [ "m" ] (Hashtbl.find df "t"));
  ]

let loop_tests =
  [ Alcotest.test_case "natural loop found" `Quick (fun () ->
        let li = A.Loops.compute loopy in
        match li.A.Loops.loops with
        | [ lp ] ->
          Alcotest.(check string) "header" "head" lp.A.Loops.header;
          Alcotest.(check (list string)) "latches" [ "body" ] lp.A.Loops.latches;
          Alcotest.(check bool) "body in loop" true (List.mem "body" lp.A.Loops.blocks);
          Alcotest.(check (option string)) "preheader" (Some "entry") lp.A.Loops.preheader;
          Alcotest.(check bool) "exit edge" true (List.mem ("head", "exit") lp.A.Loops.exits)
        | l -> Alcotest.failf "expected 1 loop, found %d" (List.length l));
    Alcotest.test_case "invariance" `Quick (fun () ->
        let li = A.Loops.compute loopy in
        let lp = List.hd li.A.Loops.loops in
        Alcotest.(check bool) "n invariant" true
          (A.Loops.operand_invariant loopy lp (Instr.Var "n"));
        Alcotest.(check bool) "i not invariant" false
          (A.Loops.operand_invariant loopy lp (Instr.Var "i")));
  ]

let scev_tests =
  [ Alcotest.test_case "classify the IV" `Quick (fun () ->
        let li = A.Loops.compute loopy in
        let lp = List.hd li.A.Loops.loops in
        match A.Scev.classify loopy lp with
        | [ iv ] ->
          Alcotest.(check string) "var" "i" iv.A.Scev.var;
          Alcotest.(check bool) "nsw" true iv.A.Scev.nsw;
          Alcotest.(check bool) "step" true (iv.A.Scev.step = Instr.Const (Constant.of_int ~width:32 3))
        | l -> Alcotest.failf "expected 1 IV, found %d" (List.length l));
    Alcotest.test_case "exit condition" `Quick (fun () ->
        let li = A.Loops.compute loopy in
        let lp = List.hd li.A.Loops.loops in
        let ivs = A.Scev.classify loopy lp in
        match A.Scev.exit_condition loopy lp ivs with
        | Some (iv, Instr.Slt, Instr.Var "n") -> Alcotest.(check string) "iv" "i" iv.A.Scev.var
        | _ -> Alcotest.fail "exit condition not recognized");
    Alcotest.test_case "scev gives up on freeze (10.1)" `Quick (fun () ->
        let fn =
          parse
            {|define i32 @l(i32 %n, i32 %s) {
entry:
  %fs = freeze i32 %s
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %i1 = add nsw i32 %i, %fs
  br label %head
exit:
  ret i32 %i
}|}
        in
        let li = A.Loops.compute fn in
        let lp = List.hd li.A.Loops.loops in
        Alcotest.(check int) "not freeze-aware: no IV" 0 (List.length (A.Scev.classify fn lp));
        Alcotest.(check int) "freeze-aware: one IV" 1
          (List.length (A.Scev.classify ~freeze_aware:true fn lp)));
  ]

let known_bits_tests =
  [ Alcotest.test_case "and/or/shl facts" `Quick (fun () ->
        let fn =
          parse
            {|define i8 @k(i8 %x) {
e:
  %m = and i8 %x, 15
  %s = shl i8 %m, 2
  %o = or i8 %s, 3
  ret i8 %o
}|}
        in
        let env = A.Known_bits.analyze fn in
        let f = Hashtbl.find env "s" in
        (* low 2 bits of %s are known zero, top 2 bits too *)
        Alcotest.(check bool) "bit0 zero" true (Ub_support.Bitvec.get_bit f.A.Known_bits.known_zero 0);
        Alcotest.(check bool) "bit7 zero" true (Ub_support.Bitvec.get_bit f.A.Known_bits.known_zero 7);
        let fo = Hashtbl.find env "o" in
        Alcotest.(check bool) "or sets bit0" true (Ub_support.Bitvec.get_bit fo.A.Known_bits.known_one 0));
    Alcotest.test_case "power of two (up to poison!)" `Quick (fun () ->
        let fn =
          parse
            {|define i8 @p(i8 %y) {
e:
  %x = shl i8 1, %y
  ret i8 %x
}|}
        in
        Alcotest.(check bool) "1 << y is pow2 up to poison" true
          (A.Known_bits.is_known_power_of_two fn (Instr.Var "x"));
        Alcotest.(check bool) "nonzero too" true
          (A.Known_bits.is_known_nonzero fn (Instr.Var "x")));
    Alcotest.test_case "not_undef_or_poison" `Quick (fun () ->
        let fn =
          parse
            {|define i8 @p(i8 %y) {
e:
  %f = freeze i8 %y
  %a = add i8 %f, 1
  %b = add nsw i8 %f, 1
  ret i8 %a
}|}
        in
        Alcotest.(check bool) "freeze result clean" true
          (A.Known_bits.not_undef_or_poison fn (Instr.Var "f"));
        Alcotest.(check bool) "plain add of clean is clean" true
          (A.Known_bits.not_undef_or_poison fn (Instr.Var "a"));
        Alcotest.(check bool) "nsw add may be poison" false
          (A.Known_bits.not_undef_or_poison fn (Instr.Var "b"));
        Alcotest.(check bool) "argument may be poison" false
          (A.Known_bits.not_undef_or_poison fn (Instr.Var "y")));
  ]

let () =
  Alcotest.run "analysis"
    [ ("cfg", cfg_tests); ("dom", dom_tests); ("loops", loop_tests); ("scev", scev_tests);
      ("known-bits", known_bits_tests);
    ]
