(* opt-fuzz: enumeration counts and well-formedness, plus a miniature
   version of the paper's Section 6 validation loop. *)

open Ub_ir
open Ub_sem
open Ub_fuzz

let unit_tests =
  [ Alcotest.test_case "every enumerated function validates" `Quick (fun () ->
        let params = { Gen.default_params with Gen.n_insns = 2 } in
        let n, _ =
          Gen.enumerate ~limit:2_000 params (fun fn ->
              match Validate.check_func fn with
              | [] -> ()
              | errs ->
                Alcotest.failf "invalid function:\n%s\n%s" (Printer.func_to_string fn)
                  (String.concat "; " errs))
        in
        Alcotest.(check bool) "nonempty" true (n > 100));
    Alcotest.test_case "enumeration is deterministic" `Quick (fun () ->
        let params = { Gen.default_params with Gen.n_insns = 1 } in
        let collect () =
          let acc = ref [] in
          let _ = Gen.enumerate params (fun fn -> acc := Printer.func_to_string fn :: !acc) in
          !acc
        in
        Alcotest.(check bool) "same" true (collect () = collect ()));
    Alcotest.test_case "one-instruction space has the expected size" `Quick (fun () ->
        (* ops with 2 operands over universe {2 args, 2 consts, poison} = 5,
           select: cond universe {true,false,poison?}: counted directly *)
        let params =
          { Gen.default_params with
            Gen.n_insns = 1;
            ops = [ Gen.Obin (Instr.Add, Instr.no_attrs) ];
            include_poison = false;
            include_undef = false;
          }
        in
        let n, truncated = Gen.enumerate params (fun _ -> ()) in
        (* operands: 2 args + 2 consts = 4 each slot -> 16 *)
        Alcotest.(check bool) "not truncated" false truncated;
        Alcotest.(check int) "4*4 candidates" 16 n);
    Alcotest.test_case "undef appears only when requested" `Quick (fun () ->
        let params =
          { Gen.default_params with Gen.n_insns = 1; include_undef = true; include_poison = false }
        in
        let saw_undef = ref false in
        let _ =
          Gen.enumerate ~limit:5_000 params (fun fn ->
              List.iter
                (fun (b : Func.block) ->
                  List.iter
                    (fun n ->
                      if
                        List.exists
                          (function
                            | Instr.Const (Constant.Undef _) -> true
                            | _ -> false)
                          (Instr.operands n.Instr.ins)
                      then saw_undef := true)
                    b.Func.insns)
                fn.Func.blocks)
        in
        Alcotest.(check bool) "undef seen" true !saw_undef);
    Alcotest.test_case "random corpus: loops terminate under fuel" `Quick (fun () ->
        let fns = Gen.random_corpus ~seed:5 ~size:10 in
        List.iter
          (fun fn ->
            let r =
              Interp.run ~fuel:100_000 fn
                [ Value.of_int ~width:32 3; Value.of_int ~width:32 14; Value.of_int ~width:32 15 ]
            in
            match r.Interp.outcome with
            | Interp.Timeout -> Alcotest.failf "%s timed out" fn.Func.name
            | _ -> ())
          fns);
  ]

(* a miniature Section-6 validation: enumerate, optimize with the fuzz
   pipeline, check refinement under the proposed semantics *)
let mini_validation =
  Alcotest.test_case "mini opt-fuzz validation run (prototype is sound)" `Slow (fun () ->
      let params = { Gen.default_params with Gen.n_insns = 2 } in
      let total = ref 0 in
      let changed = ref 0 in
      let unsound = ref 0 in
      let _ =
        Gen.enumerate ~limit:600 params (fun fn ->
            incr total;
            let fn' =
              Ub_opt.Pass.run_pipeline Ub_opt.Pass.prototype Ub_opt.Pipeline.fuzz_passes fn
            in
            if fn' <> fn then begin
              incr changed;
              match Ub_refine.Checker.check Mode.proposed ~src:fn ~tgt:fn' with
              | Ub_refine.Checker.Counterexample _ -> incr unsound
              | _ -> ()
            end)
      in
      Alcotest.(check int) "no unsound rewrites" 0 !unsound;
      Alcotest.(check bool) "pipeline fired on some" true (!changed > 20))

let legacy_caught =
  Alcotest.test_case "legacy pipeline produces checker-caught unsoundness" `Slow (fun () ->
      (* with undef operands enabled, the legacy InstCombine's
         select->or and select-undef folds must be flagged *)
      let params =
        { Gen.default_params with
          Gen.n_insns = 2;
          include_undef = true;
          ops = [ Gen.Oselect; Gen.Obin (Instr.Or, Instr.no_attrs) ];
        }
      in
      let unsound = ref 0 in
      let _ =
        Gen.enumerate ~limit:2_000 params (fun fn ->
            let fn' =
              Ub_opt.Pass.run_pipeline Ub_opt.Pass.legacy [ Ub_opt.Instcombine.pass ] fn
            in
            if fn' <> fn then
              match Ub_refine.Checker.check Mode.old_simplifycfg ~src:fn ~tgt:fn' with
              | Ub_refine.Checker.Counterexample _ -> incr unsound
              | _ -> ())
      in
      Alcotest.(check bool) "at least one legacy bug caught" true (!unsound > 0))

let () =
  Alcotest.run "fuzz"
    [ ("unit", unit_tests); ("validation", [ mini_validation; legacy_caught ]) ]
