(* Backend: instruction selection, register allocation, emission, cost
   model — including the freeze-is-a-copy lowering and the LEA/r13
   machinery behind the Queens anomaly. *)

open Ub_ir
open Ub_backend

let parse = Parser.parse_func_string

let compile src = Compile.compile_func (parse src)

let all_insts (mf : Mir.func) = List.concat_map (fun b -> b.Mir.insts) mf.Mir.blocks

let no_vregs (mf : Mir.func) =
  List.for_all
    (fun i ->
      List.for_all
        (function Mir.Vreg _ -> false | Mir.Preg _ -> true)
        (Mir.uses i @ Mir.defs i))
    (all_insts mf)

let isel_tests =
  [ Alcotest.test_case "freeze lowers to a register copy" `Quick (fun () ->
        let mf = Isel.lower_func (parse {|define i8 @f(i8 %x) {
e:
  %y = freeze i8 %x
  ret i8 %y
}|}) in
        Alcotest.(check bool) "has a Copy" true
          (List.exists (function Mir.Copy _ -> true | _ -> false) (all_insts mf)));
    Alcotest.test_case "poison lowers to a pinned undef register" `Quick (fun () ->
        let mf = Isel.lower_func (parse {|define i8 @f() {
e:
  %y = freeze i8 poison
  ret i8 %y
}|}) in
        Alcotest.(check bool) "has Undef_def" true
          (List.exists (function Mir.Undef_def _ -> true | _ -> false) (all_insts mf)));
    Alcotest.test_case "cmp fuses with branch when last" `Quick (fun () ->
        let mf = Isel.lower_func (parse {|define i8 @f(i8 %a, i8 %b) {
e:
  %c = icmp slt i8 %a, %b
  br i1 %c, label %t, label %u
t:
  ret i8 1
u:
  ret i8 2
}|}) in
        let entry = List.hd mf.Mir.blocks in
        let rec adjacent = function
          | Mir.Cmp _ :: Mir.Jcc _ :: _ -> true
          | _ :: rest -> adjacent rest
          | [] -> false
        in
        Alcotest.(check bool) "Cmp immediately before Jcc" true (adjacent entry.Mir.insts);
        Alcotest.(check bool) "no setcc" true
          (not (List.exists (function Mir.Setcc _ -> true | _ -> false) entry.Mir.insts)));
    Alcotest.test_case "non-sunk compare does not fuse" `Quick (fun () ->
        let mf = Isel.lower_func (parse {|define i8 @f(i8 %a, i8 %b) {
e:
  %c = icmp slt i8 %a, %b
  %z = add i8 %a, %b
  br i1 %c, label %t, label %u
t:
  ret i8 %z
u:
  ret i8 2
}|}) in
        let entry = List.hd mf.Mir.blocks in
        Alcotest.(check bool) "setcc used" true
          (List.exists (function Mir.Setcc _ -> true | _ -> false) entry.Mir.insts));
    Alcotest.test_case "gep selects to lea with scale" `Quick (fun () ->
        let mf = Isel.lower_func (parse {|define i32 @f(i32* %p, i32 %i) {
e:
  %q = getelementptr inbounds i32, i32* %p, i32 %i
  %v = load i32, i32* %q
  ret i32 %v
}|}) in
        Alcotest.(check bool) "lea with scale 4" true
          (List.exists
             (function Mir.Lea { addr = { Mir.scale = 4; index = Some _; _ }; _ } -> true | _ -> false)
             (all_insts mf)));
    Alcotest.test_case "vector ops legalize to scalar lanes" `Quick (fun () ->
        let mf = Isel.lower_func (parse {|define i16 @f(i16* %p) {
e:
  %pv = bitcast i16* %p to <2 x i16>*
  %v = load <2 x i16>, <2 x i16>* %pv
  %e = extractelement <2 x i16> %v, i32 0
  ret i16 %e
}|}) in
        let loads = List.filter (function Mir.Load _ -> true | _ -> false) (all_insts mf) in
        Alcotest.(check int) "two scalar loads" 2 (List.length loads));
  ]

let regalloc_tests =
  [ Alcotest.test_case "allocation eliminates all vregs" `Quick (fun () ->
        let c = compile {|define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %s = phi i32 [ 0, %entry ], [ %s1, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %s1 = add nsw i32 %s, %i
  %i1 = add nsw i32 %i, 1
  br label %head
exit:
  ret i32 %s
}|} in
        Alcotest.(check bool) "no vregs" true (no_vregs c.Compile.mir));
    Alcotest.test_case "high pressure forces spills, still no vregs" `Quick (fun () ->
        (* 20 simultaneously-live values > 14 registers *)
        let buf = Buffer.create 512 in
        Buffer.add_string buf "define i32 @p(i32 %a) {\ne:\n";
        for i = 0 to 19 do
          Buffer.add_string buf (Printf.sprintf "  %%v%d = add nsw i32 %%a, %d\n" i i)
        done;
        let rec chain i acc =
          if i > 19 then acc
          else begin
            Buffer.add_string buf (Printf.sprintf "  %%s%d = add i32 %s, %%v%d\n" i acc i);
            chain (i + 1) (Printf.sprintf "%%s%d" i)
          end
        in
        let last = chain 0 "%a" in
        Buffer.add_string buf (Printf.sprintf "  ret i32 %s\n}" last);
        let c = compile (Buffer.contents buf) in
        Alcotest.(check bool) "no vregs" true (no_vregs c.Compile.mir));
  ]

let cost_tests =
  [ Alcotest.test_case "LEA r13 penalty (the Queens effect)" `Quick (fun () ->
        let lea base =
          Mir.Lea { dst = Mir.Preg 0; addr = { Mir.base; index = None; scale = 1; disp = 0 } }
        in
        let fast = Cost.inst_cost Target.machine1 None (lea (Mir.Preg 12 (* r14 *))) in
        let slow = Cost.inst_cost Target.machine1 None (lea (Mir.Preg Target.r13)) in
        Alcotest.(check bool) "r13 slower" true (slow > fast);
        Alcotest.(check bool) "machine2 penalty larger" true
          (Cost.inst_cost Target.machine2 None (lea (Mir.Preg Target.r13)) -. Target.machine2.Target.lat_lea
           > slow -. fast));
    Alcotest.test_case "macro-fusion makes cmp+jcc cheap" `Quick (fun () ->
        let jcc = Mir.Jcc (Mir.CEq, "x") in
        let fused = Cost.inst_cost Target.machine1 (Some (Mir.Cmp (Mir.W32, Mir.Preg 0, Mir.Imm 0L))) jcc in
        let lone = Cost.inst_cost Target.machine1 (Some (Mir.Mov (Mir.W32, Mir.Preg 0, Mir.Imm 0L))) jcc in
        Alcotest.(check bool) "fused cheaper" true (fused < lone));
    Alcotest.test_case "freeze costs one copy at runtime" `Quick (fun () ->
        let with_freeze = compile {|define i8 @f(i8 %x) {
e:
  %y = freeze i8 %x
  ret i8 %y
}|} in
        let without = compile {|define i8 @f(i8 %x) {
e:
  ret i8 %x
}|} in
        let profile = [ ("e", 1) ] in
        let cw = Compile.simulate_cycles Target.machine1 with_freeze ~profile in
        let co = Compile.simulate_cycles Target.machine1 without ~profile in
        Alcotest.(check bool) "costs a bit more" true (cw > co);
        Alcotest.(check bool) "but at most a couple cycles" true (cw -. co <= 2.0));
    Alcotest.test_case "pinned undef register costs nothing" `Quick (fun () ->
        Alcotest.(check (float 0.0)) "zero" 0.0
          (Cost.inst_cost Target.machine1 None (Mir.Undef_def (Mir.Preg 3))));
  ]

let emit_tests =
  [ Alcotest.test_case "object size positive and REX-sensitive" `Quick (fun () ->
        let small = Mir.Mov (Mir.W32, Mir.Preg 0, Mir.Imm 1L) in
        let rex = Mir.Mov (Mir.W32, Mir.Preg 12, Mir.Imm 1L) in
        Alcotest.(check bool) "rex costs a byte" true (Emit.inst_size rex > Emit.inst_size small));
    Alcotest.test_case "r13 base forces a displacement byte" `Quick (fun () ->
        let mk base =
          Mir.Load (Mir.W32, Mir.Preg 0, { Mir.base; index = None; scale = 1; disp = 0 })
        in
        Alcotest.(check bool) "r13 load bigger" true
          (Emit.inst_size (mk (Mir.Preg Target.r13)) > Emit.inst_size (mk (Mir.Preg 0))));
    Alcotest.test_case "undef register emits no bytes" `Quick (fun () ->
        Alcotest.(check int) "zero" 0 (Emit.inst_size (Mir.Undef_def (Mir.Preg 1))));
    Alcotest.test_case "asm text is generated" `Quick (fun () ->
        let c = compile {|define i8 @f(i8 %x) {
e:
  %y = add nsw i8 %x, 1
  ret i8 %y
}|} in
        Alcotest.(check bool) "mentions add" true
          (Ub_support.Util.string_contains ~needle:"add" c.Compile.asm);
        Alcotest.(check bool) "size positive" true (c.Compile.obj_size > 0));
  ]

(* property: compiling the whole corpus succeeds, with no vregs left and
   positive sizes *)
let corpus_compiles =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random corpus compiles cleanly" ~count:40
       QCheck2.Gen.(int_range 0 5_000)
       (fun seed ->
         let fns = Ub_fuzz.Gen.random_corpus ~seed ~size:2 in
         List.for_all
           (fun fn ->
             let c = Compile.compile_func fn in
             no_vregs c.Compile.mir && c.Compile.obj_size > 0)
           fns))

let () =
  Alcotest.run "backend"
    [ ("isel", isel_tests);
      ("regalloc", regalloc_tests);
      ("cost", cost_tests);
      ("emit", emit_tests);
      ("properties", [ corpus_compiles ]);
    ]
