test/test_minic.ml: Alcotest Func Interp List Mode String Ub_ir Ub_minic Ub_sem Validate
