test/test_ir.ml: Alcotest Constant Func Instr List Parser Printer QCheck2 QCheck_alcotest Types Ub_fuzz Ub_ir Validate
