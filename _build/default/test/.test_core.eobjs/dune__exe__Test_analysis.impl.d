test/test_analysis.ml: Alcotest Constant Hashtbl Instr List Parser Ub_analysis Ub_ir Ub_support
