test/test_matrix.ml: Alcotest Checker Lazy List Matrix Printf Ub_refine Ub_sem
