test/test_backend.ml: Alcotest Buffer Compile Cost Emit Isel List Mir Parser Printf QCheck2 QCheck_alcotest Target Ub_backend Ub_fuzz Ub_ir Ub_support
