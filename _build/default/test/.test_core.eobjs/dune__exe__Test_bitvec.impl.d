test/test_bitvec.ml: Alcotest Bitvec Int64 QCheck2 QCheck_alcotest Ub_support
