test/test_core.ml: Alcotest Interp List Printf Ub_core Ub_minic Ub_opt Ub_sem Value
