test/test_refine.ml: Alcotest Array Checker Enum_check Func Instr List Mode Parser QCheck2 QCheck_alcotest Ub_fuzz Ub_ir Ub_refine Ub_sem Ub_support
