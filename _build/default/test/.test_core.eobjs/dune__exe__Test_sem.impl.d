test/test_sem.ml: Alcotest Bitvec Interp List Memory Mode Parser Printf Prng QCheck2 QCheck_alcotest Types Ub_fuzz Ub_ir Ub_sem Ub_support Value
