test/test_fuzz.ml: Alcotest Constant Func Gen Instr Interp List Mode Printer String Ub_fuzz Ub_ir Ub_opt Ub_refine Ub_sem Validate Value
