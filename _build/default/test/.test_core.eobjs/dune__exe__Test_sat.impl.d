test/test_sat.ml: Alcotest Array List QCheck2 QCheck_alcotest Solver Ub_sat
