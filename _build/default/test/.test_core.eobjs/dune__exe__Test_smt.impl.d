test/test_smt.ml: Alcotest Array Bitvec Bvterm Circuit Printf QCheck2 QCheck_alcotest Ub_smt Ub_support
