(* Mini-C: language features against expected results, and the
   Section 5.3 bit-field story in both Clang configurations. *)

open Ub_ir
open Ub_sem

let run ?(cfg = Ub_minic.Lower.clang_fixed) ?(mode = Mode.proposed) ?(entry = "main") src =
  let m = Ub_minic.Lower.compile ~cfg src in
  List.iter
    (fun f ->
      match Validate.check_func f with
      | [] -> ()
      | errs -> Alcotest.failf "@%s invalid: %s" f.Func.name (String.concat "; " errs))
    m.Func.funcs;
  let fn = Func.find_func_exn m entry in
  Interp.outcome_to_string (Interp.run ~mode ~module_:m ~fuel:2_000_000 fn []).Interp.outcome

let expect name src result =
  Alcotest.test_case name `Quick (fun () -> Alcotest.(check string) name result (run src))

let language_tests =
  [ expect "arithmetic and precedence" "int main() { return 2 + 3 * 4 - 10 / 2; }" "ret 9";
    expect "unary ops" "int main() { return -5 + ~0 + !0 + !7; }" "ret -5";
    expect "comparisons yield 0/1"
      "int main() { return (1 < 2) + (2 <= 2) + (3 > 4) + (3 != 3) + (5 == 5); }" "ret 3";
    expect "shifts" "int main() { return (1 << 6) + (256 >> 4); }" "ret 80";
    expect "bitwise" "int main() { return (12 & 10) + (12 | 10) + (12 ^ 10); }" "ret 28";
    expect "ternary" "int main() { int x = 7; return x > 3 ? 10 : 20; }" "ret 10";
    expect "short-circuit and" "int main() { int x = 0; return (x != 0 && 1 / x > 0) ? 1 : 2; }"
      "ret 2";
    expect "short-circuit or" "int main() { int x = 0; return (x == 0 || 1 / x > 0) ? 5 : 6; }"
      "ret 5";
    expect "while loop" "int main() { int i = 0; int s = 0; while (i < 10) { s = s + i; i = i + 1; } return s; }"
      "ret 45";
    expect "for loop with step" "int main() { int s = 0; for (int i = 0; i < 20; i = i + 3) s = s + 1; return s; }"
      "ret 7";
    expect "nested if/else"
      "int main() { int x = 5; if (x > 10) { return 1; } else { if (x > 3) { return 2; } else { return 3; } } }"
      "ret 2";
    expect "early return in loop"
      "int main() { for (int i = 0; i < 100; i = i + 1) { if (i * i > 50) return i; } return 0; }"
      "ret 8";
    expect "function calls and recursion"
      "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); } int main() { return fib(12); }"
      "ret 144";
    expect "arrays" "int main() { int a[10]; for (int i = 0; i < 10; i = i + 1) a[i] = i * i; return a[7]; }"
      "ret 49";
    expect "narrow types wrap via casts"
      "int main() { int8 x = 100; int8 y = (int8)(x + x); return y; }" "ret -56";
    expect "int16 truncation wraps"
      "int main() { int16 a = 30000; int16 b = (int16)(a + 10000); return b; }" "ret -25536";
    expect "int64 arithmetic"
      "int main() { int64 a = 100000; int64 b = a * a; return (int)(b % 1000000007); }" "ret 999999937";
    expect "compound assignment" "int main() { int x = 10; x += 5; x *= 2; x -= 3; return x; }" "ret 27";
    expect "uninitialized local is deferred UB only if used"
      "int main() { int x; int y = 3; if (y > 10) { return x; } return y; }" "ret 3";
    expect "plain struct fields"
      "struct point { int x; int y; }; int main() { struct point p; p.x = 3; p.y = 4; return p.x * p.x + p.y * p.y; }"
      "ret 25";
  ]

let bitfield_src =
  {|
struct flags {
  int a : 3;
  int b : 5;
  int c : 8;
  int d : 16;
};
int main() {
  struct flags f;
  f.a = 5;
  f.b = 19;
  f.c = 200;
  f.d = 40000;
  return f.a + f.b * 10 + f.c * 1000 + (f.d >> 8);
}
|}

let bitfield_tests =
  [ Alcotest.test_case "bit-fields pack and read back (fixed clang)" `Quick (fun () ->
        Alcotest.(check string) "value" "ret 200351" (run bitfield_src));
    Alcotest.test_case "legacy lowering poisons neighbours (the 5.3 bug)" `Quick (fun () ->
        Alcotest.(check string) "poisoned" "ret poison"
          (run ~cfg:Ub_minic.Lower.clang_legacy bitfield_src));
    Alcotest.test_case "legacy lowering is fine under old (undef) semantics" `Quick (fun () ->
        Alcotest.(check string) "works by luck" "ret 200351"
          (run ~cfg:Ub_minic.Lower.clang_legacy ~mode:Mode.old_unswitch bitfield_src));
    Alcotest.test_case "fixed lowering emits freeze, legacy does not" `Quick (fun () ->
        let count cfg =
          let m = Ub_minic.Lower.compile ~cfg bitfield_src in
          List.fold_left (fun a f -> a + Func.num_freeze f) 0 m.Func.funcs
        in
        Alcotest.(check int) "legacy 0" 0 (count Ub_minic.Lower.clang_legacy);
        Alcotest.(check int) "fixed 4 (one per store)" 4 (count Ub_minic.Lower.clang_fixed));
    Alcotest.test_case "overwriting a bit-field preserves others" `Quick (fun () ->
        Alcotest.(check string) "ok" "ret 73"
          (run
             {|
struct s { int a : 4; int b : 4; };
int main() {
  struct s x;
  x.a = 9;
  x.b = 4;
  x.a = 9;
  return x.a + x.b * 16;
}
|}));
    Alcotest.test_case "bit-fields spanning multiple words" `Quick (fun () ->
        Alcotest.(check string) "ok" "ret 300"
          (run
             {|
struct wide { int a : 20; int b : 20; };
int main() {
  struct wide w;
  w.a = 100;
  w.b = 200;
  return w.a + w.b;
}
|}));
  ]

let fig1_tests =
  [ Alcotest.test_case "Figure 1: invariant x+1 loop" `Quick (fun () ->
        Alcotest.(check string) "fills array" "ret 55"
          (run
             {|
int main() {
  int a[10];
  int x = 4;
  int n = 10;
  for (int i = 0; i < n; i = i + 1) { a[i] = x + 1; }
  int s = 0;
  for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }
  return s + 5;
}
|}));
    Alcotest.test_case "Figure 2: conditional init is safe when guarded" `Quick (fun () ->
        Alcotest.(check string) "guarded use" "ret 42"
          (run
             {|
int f() { return 42; }
int g(int v) { return v; }
int main() {
  int cond = 1;
  int cond2 = 1;
  int x;
  if (cond) { x = f(); }
  if (cond2) { return g(x); }
  return 0;
}
|}));
  ]

let () =
  Alcotest.run "minic"
    [ ("language", language_tests); ("bitfields", bitfield_tests); ("paper-figures", fig1_tests) ]
