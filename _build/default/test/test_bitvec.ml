(* Bitvec: unit tests for every operation plus qcheck properties against
   a native-int reference model (widths <= 30 so native arithmetic is
   exact). *)

open Ub_support

let bv ~w i = Bitvec.of_int ~width:w i

let check_i name expected got = Alcotest.(check string) name expected (Bitvec.to_string got)

let unit_tests =
  [ Alcotest.test_case "add wraps" `Quick (fun () ->
        check_i "255+1 @ i8" "0" (Bitvec.add (bv ~w:8 255) (bv ~w:8 1)));
    Alcotest.test_case "sub wraps" `Quick (fun () ->
        check_i "0-1 @ i8" "-1" (Bitvec.sub (bv ~w:8 0) (bv ~w:8 1)));
    Alcotest.test_case "mul wraps" `Quick (fun () ->
        check_i "16*16 @ i8" "0" (Bitvec.mul (bv ~w:8 16) (bv ~w:8 16)));
    Alcotest.test_case "signed print" `Quick (fun () ->
        check_i "128 @ i8 prints signed" "-128" (bv ~w:8 128));
    Alcotest.test_case "udiv" `Quick (fun () ->
        check_i "200/3" "66" (Bitvec.udiv (bv ~w:8 200) (bv ~w:8 3)));
    Alcotest.test_case "sdiv trunc toward zero" `Quick (fun () ->
        check_i "-7/2" "-3" (Bitvec.sdiv (bv ~w:8 (-7)) (bv ~w:8 2)));
    Alcotest.test_case "srem sign" `Quick (fun () ->
        check_i "-7%2" "-1" (Bitvec.srem (bv ~w:8 (-7)) (bv ~w:8 2)));
    Alcotest.test_case "div by zero raises" `Quick (fun () ->
        Alcotest.check_raises "udiv0" Bitvec.Division_by_zero (fun () ->
            ignore (Bitvec.udiv (bv ~w:8 1) (bv ~w:8 0))));
    Alcotest.test_case "sdiv overflow predicate" `Quick (fun () ->
        Alcotest.(check bool) "INT_MIN/-1" true
          (Bitvec.sdiv_overflows (Bitvec.min_signed 8) (Bitvec.all_ones 8));
        Alcotest.(check bool) "1/-1 fine" false
          (Bitvec.sdiv_overflows (bv ~w:8 1) (Bitvec.all_ones 8)));
    Alcotest.test_case "shifts" `Quick (fun () ->
        check_i "1<<7 @ i8" "-128" (Bitvec.shl (bv ~w:8 1) 7);
        check_i "0x80 lshr 7" "1" (Bitvec.lshr (bv ~w:8 128) 7);
        check_i "0x80 ashr 7" "-1" (Bitvec.ashr (bv ~w:8 128) 7));
    Alcotest.test_case "shift oob rejected" `Quick (fun () ->
        Alcotest.(check bool) "in range" true
          (Bitvec.shift_in_range (bv ~w:8 1) (bv ~w:8 7));
        Alcotest.(check bool) "out of range" false
          (Bitvec.shift_in_range (bv ~w:8 1) (bv ~w:8 8)));
    Alcotest.test_case "zext/sext/trunc" `Quick (fun () ->
        check_i "zext 0xff" "255" (Bitvec.zext (bv ~w:8 255) ~width:16);
        check_i "sext 0xff" "-1" (Bitvec.sext (bv ~w:8 255) ~width:16);
        check_i "trunc 0x1ff" "-1" (Bitvec.trunc (bv ~w:16 511) ~width:8));
    Alcotest.test_case "nsw/nuw add" `Quick (fun () ->
        Alcotest.(check bool) "127+1 nsw" true (Bitvec.add_nsw_overflows (bv ~w:8 127) (bv ~w:8 1));
        Alcotest.(check bool) "126+1 ok" false (Bitvec.add_nsw_overflows (bv ~w:8 126) (bv ~w:8 1));
        Alcotest.(check bool) "255+1 nuw" true (Bitvec.add_nuw_overflows (bv ~w:8 255) (bv ~w:8 1));
        Alcotest.(check bool) "-1 + -1 nsw ok" false
          (Bitvec.add_nsw_overflows (bv ~w:8 (-1)) (bv ~w:8 (-1))));
    Alcotest.test_case "nsw/nuw mul" `Quick (fun () ->
        Alcotest.(check bool) "16*8 i8 nsw" true (Bitvec.mul_nsw_overflows (bv ~w:8 16) (bv ~w:8 8));
        Alcotest.(check bool) "11*11 i8 nsw ok" false
          (Bitvec.mul_nsw_overflows (bv ~w:8 11) (bv ~w:8 11));
        Alcotest.(check bool) "16*16 i8 nuw" true (Bitvec.mul_nuw_overflows (bv ~w:8 16) (bv ~w:8 16)));
    Alcotest.test_case "width-64 edge cases" `Quick (fun () ->
        let m = Bitvec.max_signed 64 in
        Alcotest.(check bool) "max+1 nsw ovf" true (Bitvec.add_nsw_overflows m (Bitvec.one 64));
        Alcotest.(check bool) "max*2 nsw ovf" true
          (Bitvec.mul_nsw_overflows m (Bitvec.of_int ~width:64 2));
        Alcotest.(check bool) "umax*1 nuw ok" false
          (Bitvec.mul_nuw_overflows (Bitvec.max_unsigned 64) (Bitvec.one 64)));
    Alcotest.test_case "popcount / power of two" `Quick (fun () ->
        Alcotest.(check int) "popcount 0xaa" 4 (Bitvec.popcount (bv ~w:8 0xaa));
        Alcotest.(check bool) "64 is pow2" true (Bitvec.is_power_of_two (bv ~w:8 64));
        Alcotest.(check bool) "65 not" false (Bitvec.is_power_of_two (bv ~w:8 65)));
    Alcotest.test_case "leading/trailing zeros" `Quick (fun () ->
        Alcotest.(check int) "clz 1 @ i8" 7 (Bitvec.count_leading_zeros (bv ~w:8 1));
        Alcotest.(check int) "ctz 8 @ i8" 3 (Bitvec.count_trailing_zeros (bv ~w:8 8));
        Alcotest.(check int) "ctz 0 = width" 8 (Bitvec.count_trailing_zeros (bv ~w:8 0)));
    Alcotest.test_case "extract / concat" `Quick (fun () ->
        let x = bv ~w:8 0b10110100 in
        check_i "bits 2..5 (13 prints as -3 @ i4)" "-3" (Bitvec.extract x ~hi:5 ~lo:2);
        let hi = bv ~w:4 0b1011 and lo = bv ~w:4 0b0100 in
        check_i "concat" "-76" (Bitvec.concat hi lo));
    Alcotest.test_case "of_bits / to_bits roundtrip" `Quick (fun () ->
        let x = bv ~w:8 0b10110100 in
        Alcotest.(check bool) "roundtrip" true (Bitvec.equal x (Bitvec.of_bits (Bitvec.to_bits x))));
    Alcotest.test_case "of_string" `Quick (fun () ->
        check_i "decimal" "42" (Bitvec.of_string ~width:8 "42");
        check_i "negative" "-1" (Bitvec.of_string ~width:8 "-1");
        check_i "hex" "-86" (Bitvec.of_string ~width:8 "0xaa"));
    Alcotest.test_case "exact predicates" `Quick (fun () ->
        Alcotest.(check bool) "8/2 exact" true (Bitvec.udiv_exact (bv ~w:8 8) (bv ~w:8 2));
        Alcotest.(check bool) "9/2 not" false (Bitvec.udiv_exact (bv ~w:8 9) (bv ~w:8 2));
        Alcotest.(check bool) "lshr exact" true (Bitvec.lshr_exact (bv ~w:8 8) 3);
        Alcotest.(check bool) "lshr inexact" false (Bitvec.lshr_exact (bv ~w:8 9) 3));
  ]

(* reference-model properties *)
let genw = QCheck2.Gen.(int_range 1 30)

let gen_pair =
  QCheck2.Gen.(
    genw >>= fun w ->
    let bound = 1 lsl w in
    pair (return w) (pair (int_bound (bound - 1)) (int_bound (bound - 1))))

let mask w v = v land ((1 lsl w) - 1)

let prop name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:500 gen_pair (fun (w, (a, b)) -> f w a b))

let props =
  [ prop "add = native add mod 2^w" (fun w a b ->
        Bitvec.to_uint_exn (Bitvec.add (bv ~w a) (bv ~w b)) = mask w (a + b));
    prop "sub = native sub mod 2^w" (fun w a b ->
        Bitvec.to_uint_exn (Bitvec.sub (bv ~w a) (bv ~w b)) = mask w (a - b));
    prop "mul = native mul mod 2^w" (fun w a b ->
        Bitvec.to_uint_exn (Bitvec.mul (bv ~w a) (bv ~w b)) = mask w (a * b));
    prop "udiv = native" (fun w a b ->
        b = 0 || Bitvec.to_uint_exn (Bitvec.udiv (bv ~w a) (bv ~w b)) = a / b);
    prop "urem = native" (fun w a b ->
        b = 0 || Bitvec.to_uint_exn (Bitvec.urem (bv ~w a) (bv ~w b)) = a mod b);
    prop "and/or/xor = native" (fun w a b ->
        Bitvec.to_uint_exn (Bitvec.logand (bv ~w a) (bv ~w b)) = a land b
        && Bitvec.to_uint_exn (Bitvec.logor (bv ~w a) (bv ~w b)) = a lor b
        && Bitvec.to_uint_exn (Bitvec.logxor (bv ~w a) (bv ~w b)) = a lxor b);
    prop "ult = native unsigned" (fun w a b -> Bitvec.ult (bv ~w a) (bv ~w b) = (a < b));
    prop "slt = native signed" (fun w a b ->
        let s v = if v >= 1 lsl (w - 1) then v - (1 lsl w) else v in
        Bitvec.slt (bv ~w a) (bv ~w b) = (s a < s b));
    prop "add_nsw_overflows = native" (fun w a b ->
        let s v = if v >= 1 lsl (w - 1) then v - (1 lsl w) else v in
        let sum = s a + s b in
        Bitvec.add_nsw_overflows (bv ~w a) (bv ~w b)
        = (sum > (1 lsl (w - 1)) - 1 || sum < -(1 lsl (w - 1))));
    prop "mul_nsw_overflows = native" (fun w a b ->
        let s v = if v >= 1 lsl (w - 1) then v - (1 lsl w) else v in
        let p = s a * s b in
        Bitvec.mul_nsw_overflows (bv ~w a) (bv ~w b)
        = (p > (1 lsl (w - 1)) - 1 || p < -(1 lsl (w - 1))));
    prop "mul_nuw_overflows = native" (fun w a b ->
        Bitvec.mul_nuw_overflows (bv ~w a) (bv ~w b) = (a * b >= 1 lsl w));
    prop "concat/extract inverse" (fun w a b ->
        if 2 * w > 64 then true
        else begin
          let c = Bitvec.concat (bv ~w a) (bv ~w b) in
          Bitvec.to_uint_exn (Bitvec.extract c ~hi:(w - 1) ~lo:0) = b
          && Bitvec.to_uint_exn (Bitvec.extract c ~hi:((2 * w) - 1) ~lo:w) = a
        end);
    prop "sext preserves signed value" (fun w a _ ->
        if w >= 60 then true
        else begin
          let s v = if v >= 1 lsl (w - 1) then v - (1 lsl w) else v in
          Int64.to_int (Bitvec.to_sint64 (Bitvec.sext (bv ~w a) ~width:(w + 4))) = s a
        end);
  ]

let () = Alcotest.run "bitvec" [ ("unit", unit_tests); ("properties", props) ]
