(* The Section 3 soundness matrix: every cell with a paper expectation
   must agree with the checker, and the paper's headline claims must hold
   structurally (no old mode validates everything; the proposed mode plus
   the freeze fixes validates the fixed set). *)

open Ub_refine

let results = lazy (Matrix.run_all ())

let agreement_tests =
  List.map
    (fun (e : Matrix.entry) ->
      Alcotest.test_case (e.Matrix.id ^ " agrees with the paper") `Quick (fun () ->
          let _, cells = Matrix.run_entry e in
          List.iter
            (fun (c : Matrix.cell) ->
              match c.Matrix.agrees with
              | Some false ->
                Alcotest.failf "%s under %s: checker says %s, paper expects %s" e.Matrix.id
                  c.Matrix.mode_name
                  (Checker.verdict_to_string c.Matrix.verdict)
                  (match c.Matrix.expected with
                  | Some Matrix.Sound -> "sound"
                  | Some Matrix.Unsound -> "unsound"
                  | _ -> "?")
              | Some true | None -> ())
            cells))
    Matrix.all_entries

let find_cell id mode =
  let _, cells =
    List.find (fun ((e : Matrix.entry), _) -> e.Matrix.id = id) (Lazy.force results)
  in
  List.find (fun (c : Matrix.cell) -> c.Matrix.mode_name = mode) cells

let is_sound (c : Matrix.cell) = c.Matrix.verdict = Checker.Refines
let is_unsound (c : Matrix.cell) =
  match c.Matrix.verdict with Checker.Counterexample _ -> true | _ -> false

let headline_tests =
  [ Alcotest.test_case "no old semantics validates both unswitching and GVN" `Quick (fun () ->
        (* the Section 3.3 conflict, mode by mode *)
        List.iter
          (fun mode ->
            let unswitch_ok = is_sound (find_cell "loop-unswitch-raw" mode) in
            let gvn_ok = is_sound (find_cell "gvn-predicate" mode) in
            Alcotest.(check bool)
              (Printf.sprintf "%s cannot have both" mode)
              false (unswitch_ok && gvn_ok))
          [ "old-unswitch"; "old-gvn"; "old-langref"; "old-simplifycfg" ]);
    Alcotest.test_case "proposed semantics + freeze fixes validate everything" `Quick (fun () ->
        List.iter
          (fun id ->
            Alcotest.(check bool) (id ^ " sound under proposed") true
              (is_sound (find_cell id "proposed")))
          [ "mul2-to-add"; "div-hoist-guarded"; "loop-unswitch-freeze"; "gvn-predicate";
            "phi-to-select"; "select-to-branch-freeze"; "select-to-or-freeze-x";
            "select-undef-arm"; "freeze-of-freeze"; "indvar-widen-nsw"; "icmp-add-nsw";
            "reassociate-drop-nsw";
          ]);
    Alcotest.test_case "the unfixed transformations stay broken under proposed" `Quick (fun () ->
        List.iter
          (fun id ->
            Alcotest.(check bool) (id ^ " unsound under proposed") true
              (is_unsound (find_cell id "proposed")))
          [ "loop-unswitch-raw"; "select-to-branch"; "select-to-or"; "freeze-duplication";
            "indvar-widen-wrapping"; "icmp-add-wrapping"; "reassociate-keep-nsw";
          ]);
    Alcotest.test_case "paper prose vs checker: freezing %c does not fix select->or" `Quick
      (fun () ->
        Alcotest.(check bool) "freeze-c still unsound" true
          (is_unsound (find_cell "select-to-or-freeze-c" "proposed"));
        Alcotest.(check bool) "freeze-x is the fix" true
          (is_sound (find_cell "select-to-or-freeze-x" "proposed")));
    Alcotest.test_case "counterexamples mention poison or undef" `Quick (fun () ->
        match (find_cell "mul2-to-add" "old-unswitch").Matrix.verdict with
        | Checker.Counterexample { args; _ } ->
          Alcotest.(check bool) "undef argument in cex" true
            (List.exists
               (fun v -> v = Ub_sem.Value.Scalar Ub_sem.Value.Undef)
               args)
        | v -> Alcotest.failf "expected cex, got %s" (Checker.verdict_to_string v));
  ]

let () =
  Alcotest.run "matrix"
    [ ("cell-agreement", agreement_tests); ("headline-claims", headline_tests) ]
