(* The optimizer: per-pass unit behaviour, validator-cleanliness of every
   pass on the corpus, translation validation of the prototype pipeline,
   and detection of the deliberately-unsound legacy variants. *)

open Ub_ir
open Ub_sem
open Ub_opt

let parse = Parser.parse_func_string

let opt_with pass cfg src = (pass : Pass.t).Pass.run cfg (parse src)

let has_insn fn p = Func.count_insns fn p > 0

let instcombine_tests =
  [ Alcotest.test_case "x+0 folds" `Quick (fun () ->
        let fn =
          opt_with Instcombine.pass Pass.prototype
            {|define i8 @f(i8 %x) {
e:
  %y = add i8 %x, 0
  ret i8 %y
}|}
        in
        Alcotest.(check int) "only ret remains" 1 (Func.num_insns fn));
    Alcotest.test_case "mul x,2 -> add x,x (prototype)" `Quick (fun () ->
        let fn =
          opt_with Instcombine.pass Pass.prototype
            {|define i8 @f(i8 %x) {
e:
  %y = mul i8 %x, 2
  ret i8 %y
}|}
        in
        (* then add x,x -> shl x,1 *)
        Alcotest.(check bool) "became shl" true
          (has_insn fn (function Instr.Binop (Instr.Shl, _, _, _, _) -> true | _ -> false)));
    Alcotest.test_case "a+b>a -> b>0 with nsw" `Quick (fun () ->
        let fn =
          opt_with Instcombine.pass Pass.prototype
            {|define i1 @f(i8 %a, i8 %b) {
e:
  %add = add nsw i8 %a, %b
  %cmp = icmp sgt i8 %add, %a
  ret i1 %cmp
}|}
        in
        Alcotest.(check bool) "compares b with 0" true
          (has_insn fn (function
            | Instr.Icmp (Instr.Sgt, _, Instr.Var "b", Instr.Const _) -> true
            | _ -> false)));
    Alcotest.test_case "select -> or uses freeze in prototype" `Quick (fun () ->
        let fn =
          opt_with Instcombine.pass Pass.prototype
            {|define i1 @f(i1 %c, i1 %x) {
e:
  %r = select i1 %c, i1 true, i1 %x
  ret i1 %r
}|}
        in
        Alcotest.(check int) "freeze inserted" 1 (Func.num_freeze fn);
        let legacy =
          opt_with Instcombine.pass Pass.legacy
            {|define i1 @f(i1 %c, i1 %x) {
e:
  %r = select i1 %c, i1 true, i1 %x
  ret i1 %r
}|}
        in
        Alcotest.(check int) "legacy: no freeze" 0 (Func.num_freeze legacy));
    Alcotest.test_case "freeze of freeze folds" `Quick (fun () ->
        let fn =
          opt_with Instcombine.pass Pass.prototype
            {|define i8 @f(i8 %x) {
e:
  %a = freeze i8 %x
  %b = freeze i8 %a
  ret i8 %b
}|}
        in
        Alcotest.(check int) "one freeze" 1 (Func.num_freeze fn));
    Alcotest.test_case "freeze of known-clean value folds away" `Quick (fun () ->
        let fn =
          opt_with Instcombine.pass Pass.prototype
            {|define i8 @f(i8 %x) {
e:
  %f = freeze i8 %x
  %m = and i8 %f, 7
  %a = freeze i8 %m
  ret i8 %a
}|}
        in
        (* the outer freeze folds: its input chains to a frozen value
           through strict, attribute-free ops; the inner one must stay *)
        Alcotest.(check int) "one freeze" 1 (Func.num_freeze fn));
    Alcotest.test_case "freeze of possibly-poison value is kept" `Quick (fun () ->
        let fn =
          opt_with Instcombine.pass Pass.prototype
            {|define i8 @f(i8 %x) {
e:
  %m = and i8 %x, 7
  %a = freeze i8 %m
  ret i8 %a
}|}
        in
        Alcotest.(check int) "freeze kept (x may be poison)" 1 (Func.num_freeze fn));
  ]

let fold_and_sccp_tests =
  [ Alcotest.test_case "constant folding incl. poison strictness" `Quick (fun () ->
        let fn =
          opt_with Constant_fold.pass Pass.prototype
            {|define i8 @f() {
e:
  %a = add i8 2, 3
  %b = mul nsw i8 %a, 30
  %c = add i8 poison, 1
  %d = select i1 true, i8 %a, i8 %c
  ret i8 %d
}|}
        in
        Alcotest.(check int) "all folded" 1 (Func.num_insns fn));
    Alcotest.test_case "division by zero never folds" `Quick (fun () ->
        let fn =
          opt_with Constant_fold.pass Pass.prototype
            {|define i8 @f() {
e:
  %a = udiv i8 1, 0
  ret i8 %a
}|}
        in
        Alcotest.(check bool) "udiv kept" true
          (has_insn fn (function Instr.Binop (Instr.UDiv, _, _, _, _) -> true | _ -> false)));
    Alcotest.test_case "sccp folds through the diamond" `Quick (fun () ->
        let fn =
          opt_with Sccp.pass Pass.prototype
            {|define i8 @f() {
e:
  %c = icmp slt i8 1, 2
  br i1 %c, label %t, label %u
t:
  br label %m
u:
  br label %m
m:
  %x = phi i8 [ 7, %t ], [ 9, %u ]
  ret i8 %x
}|}
        in
        let r = Interp.run fn [] in
        Alcotest.(check string) "returns 7" "ret 7" (Interp.outcome_to_string r.Interp.outcome));
    Alcotest.test_case "sccp does not speculate on arguments" `Quick (fun () ->
        let fn =
          opt_with Sccp.pass Pass.prototype
            {|define i8 @f(i1 %c) {
e:
  br i1 %c, label %t, label %u
t:
  ret i8 1
u:
  ret i8 2
}|}
        in
        Alcotest.(check int) "both rets alive" 3 (List.length fn.Func.blocks));
  ]

let cfg_pass_tests =
  [ Alcotest.test_case "simplifycfg: phi -> select" `Quick (fun () ->
        let fn =
          opt_with Simplifycfg.pass Pass.prototype
            {|define i8 @f(i1 %c, i8 %a, i8 %b) {
e:
  br i1 %c, label %t, label %u
t:
  br label %m
u:
  br label %m
m:
  %x = phi i8 [ %a, %t ], [ %b, %u ]
  ret i8 %x
}|}
        in
        Alcotest.(check bool) "select created" true
          (has_insn fn (function Instr.Select _ -> true | _ -> false));
        Alcotest.(check int) "single block" 1 (List.length fn.Func.blocks));
    Alcotest.test_case "jump threading folds constant branches" `Quick (fun () ->
        let fn =
          opt_with Jump_threading.pass Pass.prototype
            {|define i8 @f() {
e:
  br i1 true, label %t, label %u
t:
  ret i8 1
u:
  ret i8 2
}|}
        in
        Alcotest.(check int) "unreachable arm gone" 2 (List.length fn.Func.blocks));
    Alcotest.test_case "jump threading blocked by freeze (the 19% anomaly)" `Quick (fun () ->
        let src =
          {|define i8 @f() {
e:
  %fc = freeze i1 true
  br i1 %fc, label %t, label %u
t:
  ret i8 1
u:
  ret i8 2
}|}
        in
        let legacy = opt_with Jump_threading.pass Pass.prototype src in
        Alcotest.(check int) "not threaded (prototype: jt not freeze-aware)" 3
          (List.length legacy.Func.blocks);
        let future = opt_with Jump_threading.pass Pass.future src in
        Alcotest.(check int) "threaded when freeze-aware" 2 (List.length future.Func.blocks));
    Alcotest.test_case "gvn removes redundancy and propagates equality" `Quick (fun () ->
        let fn =
          opt_with Gvn.pass Pass.prototype
            {|define void @f(i8 %x, i8 %y) {
e:
  %t = add i8 %x, 1
  %cmp = icmp eq i8 %t, %y
  br i1 %cmp, label %then, label %out
then:
  %w = add i8 %x, 1
  call void @foo(i8 %w)
  br label %out
out:
  ret void
}|}
        in
        Alcotest.(check bool) "foo(%y) now" true
          (has_insn fn (function
            | Instr.Call (_, "foo", [ (_, Instr.Var "y") ]) -> true
            | _ -> false)));
    Alcotest.test_case "gvn does not merge freezes" `Quick (fun () ->
        let fn =
          opt_with Gvn.pass Pass.prototype
            {|define i8 @f(i8 %x) {
e:
  %a = freeze i8 %x
  %b = freeze i8 %x
  %s = sub i8 %a, %b
  ret i8 %s
}|}
        in
        Alcotest.(check int) "both freezes kept" 2 (Func.num_freeze fn));
  ]

let loop_pass_tests =
  [ Alcotest.test_case "licm hoists invariant arithmetic" `Quick (fun () ->
        let fn =
          opt_with Licm.pass Pass.prototype
            {|define i8 @f(i8 %x, i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  %inv = add nsw i8 %x, 1
  call void @use(i8 %inv)
  %i1 = add nsw i8 %i, 1
  br label %head
exit:
  ret i8 0
}|}
        in
        let entry = Func.entry fn in
        Alcotest.(check bool) "add hoisted to preheader" true
          (List.exists
             (fun n -> match n.Instr.ins with Instr.Binop (Instr.Add, _, _, Instr.Var "x", _) -> true | _ -> false)
             entry.Func.insns));
    Alcotest.test_case "licm never hoists division with unknown divisor" `Quick (fun () ->
        let src =
          {|define i8 @f(i8 %k, i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  %d = udiv i8 1, %k
  call void @use(i8 %d)
  %i1 = add nsw i8 %i, 1
  br label %head
exit:
  ret i8 0
}|}
        in
        let fn = opt_with Licm.pass Pass.prototype src in
        let entry = Func.entry fn in
        Alcotest.(check bool) "div not hoisted" false
          (List.exists
             (fun n -> match n.Instr.ins with Instr.Binop (Instr.UDiv, _, _, _, _) -> true | _ -> false)
             entry.Func.insns));
    Alcotest.test_case "unswitching inserts freeze in prototype only" `Quick (fun () ->
        let src =
          {|define void @f(i8 %n, i1 %c2) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %latch ]
  %c = icmp slt i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  br i1 %c2, label %t, label %e2
t:
  call void @foo(i8 %i)
  br label %latch
e2:
  call void @bar(i8 %i)
  br label %latch
latch:
  %i1 = add nsw i8 %i, 1
  br label %head
exit:
  ret void
}|}
        in
        let proto = opt_with Loop_unswitch.pass Pass.prototype src in
        Alcotest.(check int) "freeze added" 1 (Func.num_freeze proto);
        Alcotest.(check bool) "loop duplicated" true
          (List.length proto.Func.blocks > 8);
        let legacy = opt_with Loop_unswitch.pass Pass.legacy src in
        Alcotest.(check int) "legacy hoists raw condition" 0 (Func.num_freeze legacy));
    Alcotest.test_case "indvar widening removes the sext (Figure 3)" `Quick (fun () ->
        let src =
          {|define i64 @f(i32 %n, i64 %acc) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %a = phi i64 [ %acc, %entry ], [ %a1, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %iext = sext i32 %i to i64
  %a1 = add i64 %a, %iext
  %i1 = add nsw i32 %i, 1
  br label %head
exit:
  ret i64 %a
}|}
        in
        let fn = opt_with Indvar_widen.pass Pass.prototype src in
        let body = Func.find_block_exn fn "body" in
        Alcotest.(check bool) "no sext in loop body" false
          (List.exists
             (fun n -> match n.Instr.ins with Instr.Conv (Instr.Sext, _, _, _) -> true | _ -> false)
             body.Func.insns);
        (* and it still computes the same thing *)
        let r0 = Interp.run ~module_:{ Func.funcs = [ parse src ] } (parse src)
            [ Value.of_int ~width:32 10; Value.of_int ~width:64 5 ] in
        let r1 = Interp.run ~module_:{ Func.funcs = [ fn ] } fn
            [ Value.of_int ~width:32 10; Value.of_int ~width:64 5 ] in
        Alcotest.(check string) "same result"
          (Interp.outcome_to_string r0.Interp.outcome)
          (Interp.outcome_to_string r1.Interp.outcome));
    Alcotest.test_case "reassociate merges constants and drops nsw" `Quick (fun () ->
        let fn =
          opt_with Reassociate.pass Pass.prototype
            {|define i8 @f(i8 %x) {
e:
  %a = add nsw i8 %x, 3
  %b = add nsw i8 %a, 4
  ret i8 %b
}|}
        in
        Alcotest.(check bool) "x + 7 without nsw" true
          (has_insn fn (function
            | Instr.Binop (Instr.Add, attrs, _, _, Instr.Const (Constant.Int bv)) ->
              Ub_support.Bitvec.to_uint_exn bv = 7 && not attrs.Instr.nsw
            | _ -> false)));
  ]

(* end-to-end: the O2 prototype pipeline preserves behaviour on the spec
   suite (interpreter-checked) and never emits invalid IR *)
let pipeline_tests =
  [ Alcotest.test_case "O2 preserves the spec suite results" `Slow (fun () ->
        List.iter
          (fun (bench : Ub_core.Spec_suite.bench) ->
            let m = Ub_minic.Lower.compile ~cfg:Ub_minic.Lower.clang_fixed bench.Ub_core.Spec_suite.source in
            let o = Pipeline.run_o2 Pass.prototype m in
            let fn0 = Func.find_func_exn m bench.entry in
            let fn1 = Func.find_func_exn o bench.entry in
            let r0 = Interp.run ~fuel:3_000_000 ~module_:m fn0 [] in
            let r1 = Interp.run ~fuel:3_000_000 ~module_:o fn1 [] in
            Alcotest.(check string)
              (bench.name ^ " result preserved")
              (Interp.outcome_to_string r0.Interp.outcome)
              (Interp.outcome_to_string r1.Interp.outcome))
          Ub_core.Spec_suite.all);
    Alcotest.test_case "every pass leaves the corpus valid" `Slow (fun () ->
        let corpus = Ub_fuzz.Gen.random_corpus ~seed:99 ~size:30 in
        List.iter
          (fun fn ->
            List.iter
              (fun (p : Pass.t) ->
                let fn' = p.Pass.run Pass.prototype fn in
                match Validate.check_func fn' with
                | [] -> ()
                | errs ->
                  Alcotest.failf "pass %s broke %s: %s" p.Pass.name fn.Func.name
                    (String.concat "; " errs))
              Pipeline.o2_function_passes)
          corpus);
  ]

(* translation validation: the fuzz passes are sound under the proposed
   semantics on the opt-fuzz space; the legacy InstCombine is not *)
let validation_tests =
  [ Alcotest.test_case "prototype InstCombine validates on opt-fuzz slice" `Slow (fun () ->
        let params =
          { Ub_fuzz.Gen.default_params with Ub_fuzz.Gen.n_insns = 2; include_poison = true }
        in
        let checked = ref 0 in
        let _ =
          Ub_fuzz.Gen.enumerate ~limit:800 params (fun fn ->
              let fn' = Instcombine.pass.Pass.run Pass.prototype fn in
              if fn' <> fn then begin
                incr checked;
                match Ub_refine.Checker.check Mode.proposed ~src:fn ~tgt:fn' with
                | Ub_refine.Checker.Counterexample { args; _ } ->
                  Alcotest.failf "unsound rewrite on %s (args %s):\n%s->\n%s"
                    (Printer.func_to_string fn)
                    (String.concat "," (List.map Value.to_string args))
                    (Printer.func_to_string fn) (Printer.func_to_string fn')
                | _ -> ()
              end)
        in
        Alcotest.(check bool) "some rewrites were exercised" true (!checked > 10));
    Alcotest.test_case "legacy select->or rewrite is caught" `Quick (fun () ->
        let src =
          parse
            {|define i1 @f(i1 %c, i1 %x) {
e:
  %r = select i1 %c, i1 true, i1 %x
  ret i1 %r
}|}
        in
        let tgt = Instcombine.pass.Pass.run Pass.legacy src in
        match Ub_refine.Checker.check Mode.proposed ~src ~tgt with
        | Ub_refine.Checker.Counterexample _ -> ()
        | v ->
          Alcotest.failf "legacy rewrite not caught: %s" (Ub_refine.Checker.verdict_to_string v));
  ]

let () =
  Alcotest.run "opt"
    [ ("instcombine", instcombine_tests);
      ("fold-sccp", fold_and_sccp_tests);
      ("cfg-passes", cfg_pass_tests);
      ("loop-passes", loop_pass_tests);
      ("pipeline", pipeline_tests);
      ("validation", validation_tests);
    ]
