(* The end-to-end driver and the benchmark suite: every kernel runs to a
   concrete value under the pipeline's own semantics, metrics are sane,
   and the freeze statistics have the paper's shape (bit-field-heavy gcc
   is the maximum). *)

open Ub_sem

let suite_tests =
  List.map
    (fun (b : Ub_core.Spec_suite.bench) ->
      Alcotest.test_case (b.Ub_core.Spec_suite.name ^ " compiles and runs") `Slow (fun () ->
          let proto = Ub_core.Driver.compile ~pipeline:Ub_core.Driver.Prototype b.source in
          let base = Ub_core.Driver.compile ~pipeline:Ub_core.Driver.Baseline b.source in
          (* prototype output runs under the proposed semantics *)
          let sp = Ub_core.Driver.simulate proto ~entry:b.entry ~args:[] in
          (match sp.Ub_core.Driver.outcome with
          | Interp.Returned (Some (Value.Scalar (Value.Conc _))) -> ()
          | o -> Alcotest.failf "prototype: %s" (Interp.outcome_to_string o));
          (* baseline output runs under the old semantics *)
          let sb = Ub_core.Driver.simulate base ~entry:b.entry ~args:[] in
          (match sb.Ub_core.Driver.outcome with
          | Interp.Returned (Some (Value.Scalar (Value.Conc _))) -> ()
          | o -> Alcotest.failf "baseline: %s" (Interp.outcome_to_string o));
          (* both agree on the result (these programs are UB-free) *)
          Alcotest.(check string)
            (b.name ^ " same result")
            (Interp.outcome_to_string sb.outcome)
            (Interp.outcome_to_string sp.outcome);
          (* metrics sanity *)
          Alcotest.(check bool) "cycles positive" true (sp.cycles_m1 > 0.0 && sp.cycles_m2 > 0.0);
          Alcotest.(check bool) "object bytes positive" true
            (proto.Ub_core.Driver.metrics.Ub_core.Driver.obj_bytes > 0);
          Alcotest.(check bool) "IR nonempty" true
            (proto.Ub_core.Driver.metrics.Ub_core.Driver.ir_insns > 0)))
    Ub_core.Spec_suite.all

let shape_tests =
  [ Alcotest.test_case "gcc has the most freezes (the §7.2 shape)" `Slow (fun () ->
        let freeze_of (b : Ub_core.Spec_suite.bench) =
          ( b.Ub_core.Spec_suite.name,
            (Ub_core.Driver.compile ~pipeline:Ub_core.Driver.Prototype b.source)
              .Ub_core.Driver.metrics.Ub_core.Driver.freeze_count )
        in
        let counts = List.map freeze_of Ub_core.Spec_suite.all in
        let gcc = List.assoc "gcc" counts in
        Alcotest.(check bool) "gcc > 0" true (gcc > 0);
        List.iter
          (fun (n, c) ->
            if n <> "gcc" then
              Alcotest.(check bool) (n ^ " <= gcc") true (c <= gcc))
          counts);
    Alcotest.test_case "baseline pipeline never emits freeze" `Slow (fun () ->
        List.iter
          (fun (b : Ub_core.Spec_suite.bench) ->
            let base = Ub_core.Driver.compile ~pipeline:Ub_core.Driver.Baseline b.Ub_core.Spec_suite.source in
            Alcotest.(check int) (b.name ^ " baseline freeze") 0
              base.Ub_core.Driver.metrics.Ub_core.Driver.freeze_count)
          Ub_core.Spec_suite.all);
    Alcotest.test_case "optimization shrinks or keeps the suite's IR" `Slow (fun () ->
        List.iter
          (fun (b : Ub_core.Spec_suite.bench) ->
            let m =
              Ub_minic.Lower.compile ~cfg:Ub_minic.Lower.clang_fixed b.Ub_core.Spec_suite.source
            in
            let before = Ub_core.Driver.total_insns m in
            let o = Ub_opt.Pipeline.run_o2 Ub_opt.Pass.prototype m in
            let after = Ub_core.Driver.total_insns o in
            (* freeze insertion can add a handful; anything larger than
               +25% would mean a pass is duplicating code wholesale
               (unswitching is capped at one loop per pipeline run) *)
            Alcotest.(check bool)
              (Printf.sprintf "%s: %d -> %d" b.name before after)
              true
              (float_of_int after <= 1.6 *. float_of_int before))
          Ub_core.Spec_suite.all);
    Alcotest.test_case "comparison record is internally consistent" `Slow (fun () ->
        let b = List.hd Ub_core.Spec_suite.all in
        let c =
          Ub_core.Driver.compare_pipelines ~name:b.Ub_core.Spec_suite.name ~entry:b.entry
            ~args:[] b.source
        in
        Alcotest.(check string) "name" b.name c.Ub_core.Driver.name;
        Alcotest.(check bool) "freeze fraction in [0,100]" true
          (c.freeze_fraction_pct >= 0.0 && c.freeze_fraction_pct <= 100.0));
  ]

let () =
  Alcotest.run "core" [ ("spec-suite", suite_tests); ("shape", shape_tests) ]
