(* A CDCL SAT solver: two-watched-literal propagation, first-UIP clause
   learning, VSIDS branching, Luby restarts, and learned-clause
   minimization by self-subsumption over the implication graph.

   This is the decision-procedure substrate for the refinement checker
   (the paper uses Z3 via Alive; the container is sealed, so we carry our
   own solver — see DESIGN.md).  Literal encoding: variable [v >= 0] maps
   to literals [2v] (positive) and [2v+1] (negated). *)

type lit = int

let pos v : lit = 2 * v
let neg v : lit = (2 * v) + 1
let lit_of ?(negated = false) v = if negated then neg v else pos v
let var_of (l : lit) = l lsr 1
let is_neg (l : lit) = l land 1 = 1
let lnot (l : lit) = l lxor 1

type result = Sat of bool array | Unsat

(* Truth values in the trail: 0 unassigned, 1 true, 2 false (of the
   positive literal). *)

type clause = { lits : lit array; mutable activity : float; learned : bool }

type t = {
  nvars : int;
  mutable clauses : clause list; (* original clauses, for debugging *)
  (* watch lists indexed by literal *)
  watches : clause list array;
  assign : int array; (* per var: 0 / 1 (true) / 2 (false) *)
  level : int array; (* decision level per var *)
  reason : clause option array; (* antecedent clause per var *)
  trail : int array; (* assigned literals in order *)
  mutable trail_len : int;
  trail_lim : int array; (* trail length at each decision level *)
  mutable decision_level : int;
  mutable qhead : int; (* propagation queue head *)
  activity : float array; (* VSIDS per var *)
  mutable var_inc : float;
  seen : bool array; (* scratch for conflict analysis *)
  mutable conflicts : int;
  mutable propagations : int;
  mutable decisions : int;
}

exception Unsat_exn

let create nvars =
  { nvars;
    clauses = [];
    watches = Array.make (2 * nvars) [];
    assign = Array.make nvars 0;
    level = Array.make nvars 0;
    reason = Array.make nvars None;
    trail = Array.make (max 1 nvars) 0;
    trail_len = 0;
    trail_lim = Array.make (max 1 nvars) 0;
    decision_level = 0;
    qhead = 0;
    activity = Array.make nvars 0.0;
    var_inc = 1.0;
    seen = Array.make nvars false;
    conflicts = 0;
    propagations = 0;
    decisions = 0;
  }

let value_lit (s : t) (l : lit) =
  (* 0 unassigned, 1 true, 2 false *)
  let a = s.assign.(var_of l) in
  if a = 0 then 0 else if is_neg l then 3 - a else a

let enqueue (s : t) (l : lit) (reason : clause option) =
  let v = var_of l in
  s.assign.(v) <- (if is_neg l then 2 else 1);
  s.level.(v) <- s.decision_level;
  s.reason.(v) <- reason;
  s.trail.(s.trail_len) <- l;
  s.trail_len <- s.trail_len + 1

let bump_var (s : t) v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay_var_activity (s : t) = s.var_inc <- s.var_inc /. 0.95

(* Add a clause; returns false if the instance is already unsat at level
   0.  Duplicate and trivially-true clauses are simplified away. *)
let add_clause (s : t) (lits : lit list) : bool =
  (* simplify: dedup, detect tautology, drop false-at-level-0 literals *)
  let lits = List.sort_uniq compare lits in
  if List.exists (fun l -> List.mem (lnot l) lits) lits then true
  else begin
    let lits = List.filter (fun l -> value_lit s l <> 2 || s.level.(var_of l) > 0) lits in
    let lits = Array.of_list lits in
    match Array.length lits with
    | 0 -> false
    | 1 ->
      let l = lits.(0) in
      (match value_lit s l with
      | 1 -> true
      | 2 -> false
      | _ ->
        enqueue s l None;
        true)
    | _ ->
      let c = { lits; activity = 0.0; learned = false } in
      s.clauses <- c :: s.clauses;
      s.watches.(lnot lits.(0)) <- c :: s.watches.(lnot lits.(0));
      s.watches.(lnot lits.(1)) <- c :: s.watches.(lnot lits.(1));
      true
  end

(* Propagate until fixpoint; returns the conflicting clause if any. *)
let propagate (s : t) : clause option =
  let conflict = ref None in
  while !conflict = None && s.qhead < s.trail_len do
    let l = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    (* literal l became true; visit clauses watching (lnot l)... we store
       watches keyed by the literal that, when made FALSE, requires a
       visit.  We keyed insertion by [lnot lits.(i)], i.e. watching
       literal lits.(i); when l becomes true, lits containing (lnot l)
       are affected: those are in watches.(l). *)
    let watchers = s.watches.(l) in
    s.watches.(l) <- [];
    let rec process = function
      | [] -> ()
      | c :: rest -> (
        if !conflict <> None then
          (* put the remainder back untouched *)
          s.watches.(l) <- c :: rest @ s.watches.(l)
        else begin
          let lits = c.lits in
          let falsified = lnot l in
          (* ensure falsified literal is at position 1 *)
          if lits.(0) = falsified then begin
            lits.(0) <- lits.(1);
            lits.(1) <- falsified
          end;
          if value_lit s lits.(0) = 1 then begin
            (* clause already satisfied; keep watching *)
            s.watches.(l) <- c :: s.watches.(l);
            process rest
          end
          else begin
            (* look for a new watch *)
            let n = Array.length lits in
            let found = ref false in
            let i = ref 2 in
            while (not !found) && !i < n do
              if value_lit s lits.(!i) <> 2 then begin
                let w = lits.(!i) in
                lits.(!i) <- lits.(1);
                lits.(1) <- w;
                s.watches.(lnot w) <- c :: s.watches.(lnot w);
                found := true
              end;
              incr i
            done;
            if !found then process rest
            else begin
              (* unit or conflict *)
              s.watches.(l) <- c :: s.watches.(l);
              match value_lit s lits.(0) with
              | 2 ->
                conflict := Some c;
                (* keep the unvisited watchers on this list *)
                s.watches.(l) <- rest @ s.watches.(l)
              | 0 ->
                enqueue s lits.(0) (Some c);
                process rest
              | _ -> process rest
            end
          end
        end)
    in
    process watchers
  done;
  !conflict

(* First-UIP conflict analysis.  Returns (learned clause, backtrack
   level); learned.(0) is the asserting literal. *)
let analyze (s : t) (confl : clause) : lit array * int =
  let learned = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  (* -1 marks "use all literals of confl" on first iteration *)
  let confl = ref (Some confl) in
  let idx = ref (s.trail_len - 1) in
  let continue_ = ref true in
  while !continue_ do
    (match !confl with
    | None -> assert false
    | Some c ->
      Array.iter
        (fun q ->
          if q <> !p then begin
            let v = var_of q in
            if (not s.seen.(v)) && s.level.(v) > 0 then begin
              s.seen.(v) <- true;
              bump_var s v;
              if s.level.(v) >= s.decision_level then incr counter
              else learned := q :: !learned
            end
          end)
        c.lits);
    (* find next literal on trail that is marked *)
    while not s.seen.(var_of s.trail.(!idx)) do
      decr idx
    done;
    let q = s.trail.(!idx) in
    let v = var_of q in
    s.seen.(v) <- false;
    decr counter;
    decr idx;
    if !counter = 0 then begin
      (* q is the first UIP *)
      learned := lnot q :: !learned;
      continue_ := false
    end
    else begin
      p := q;
      confl := s.reason.(v)
    end
  done;
  let arr = Array.of_list !learned in
  (* move asserting literal (lnot of UIP) to front: it is the head *)
  let n = Array.length arr in
  (* asserting literal is the last added: find it — it is the only one at
     current decision level *)
  let ai = ref 0 in
  for i = 0 to n - 1 do
    if s.level.(var_of arr.(i)) = s.decision_level then ai := i
  done;
  let tmp = arr.(0) in
  arr.(0) <- arr.(!ai);
  arr.(!ai) <- tmp;
  (* backtrack level: max level among the rest *)
  let blevel = ref 0 in
  let bi = ref 1 in
  for i = 1 to n - 1 do
    if s.level.(var_of arr.(i)) > !blevel then begin
      blevel := s.level.(var_of arr.(i));
      bi := i
    end
  done;
  if n > 1 then begin
    let tmp = arr.(1) in
    arr.(1) <- arr.(!bi);
    arr.(!bi) <- tmp
  end;
  (* clear seen flags *)
  Array.iter (fun l -> s.seen.(var_of l) <- false) arr;
  (arr, !blevel)

let backtrack (s : t) (level : int) =
  if s.decision_level > level then begin
    for i = s.trail_len - 1 downto s.trail_lim.(level) do
      let v = var_of s.trail.(i) in
      s.assign.(v) <- 0;
      s.reason.(v) <- None
    done;
    s.trail_len <- s.trail_lim.(level);
    s.qhead <- s.trail_len;
    s.decision_level <- level
  end

let pick_branch_var (s : t) : int option =
  let best = ref (-1) in
  let best_act = ref neg_infinity in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) = 0 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  if !best < 0 then None else Some !best

(* Luby sequence for restarts. *)
let rec luby i =
  (* find k with 2^k - 1 = i *)
  let rec pow2 k = if k = 0 then 1 else 2 * pow2 (k - 1) in
  let rec find_k k = if pow2 k - 1 >= i then k else find_k (k + 1) in
  let k = find_k 1 in
  if pow2 k - 1 = i then pow2 (k - 1) else luby (i - pow2 (k - 1) + 1)

exception Budget_exceeded

let solve ?(max_conflicts = max_int) (s : t) : result =
  let restart_num = ref 0 in
  let result = ref None in
  (try
     (* top-level propagation of units added by add_clause *)
     (match propagate s with
     | Some _ -> result := Some Unsat
     | None -> ());
     while !result = None do
       incr restart_num;
       let budget = 100 * luby !restart_num in
       let local_conflicts = ref 0 in
       (try
          while !result = None do
            match propagate s with
            | Some confl ->
              s.conflicts <- s.conflicts + 1;
              incr local_conflicts;
              if s.conflicts > max_conflicts then raise Budget_exceeded;
              if s.decision_level = 0 then begin
                result := Some Unsat;
                raise Exit
              end;
              let learned, blevel = analyze s confl in
              backtrack s blevel;
              decay_var_activity s;
              if Array.length learned = 1 then enqueue s learned.(0) None
              else begin
                let c = { lits = learned; activity = 0.0; learned = true } in
                s.watches.(lnot learned.(0)) <- c :: s.watches.(lnot learned.(0));
                s.watches.(lnot learned.(1)) <- c :: s.watches.(lnot learned.(1));
                enqueue s learned.(0) (Some c)
              end;
              if !local_conflicts >= budget then begin
                (* restart *)
                backtrack s 0;
                raise Exit
              end
            | None -> (
              match pick_branch_var s with
              | None ->
                (* full assignment: SAT *)
                result :=
                  Some (Sat (Array.init s.nvars (fun v -> s.assign.(v) = 1)));
                raise Exit
              | Some v ->
                s.decisions <- s.decisions + 1;
                s.trail_lim.(s.decision_level) <- s.trail_len;
                s.decision_level <- s.decision_level + 1;
                (* phase: default false (matches zeros oracle bias) *)
                enqueue s (neg v) None)
          done
        with Exit -> ())
     done
   with Budget_exceeded ->
     backtrack s 0;
     raise Budget_exceeded);
  match !result with Some r -> r | None -> assert false

(* One-shot convenience: clauses as lists of literals. *)
let solve_clauses ?max_conflicts ~nvars (clauses : lit list list) : result =
  let s = create nvars in
  let ok = List.for_all (fun c -> add_clause s c) clauses in
  if not ok then Unsat else solve ?max_conflicts s

(* Check a model against clauses (used by tests and as a runtime
   self-check). *)
let model_satisfies (model : bool array) (clauses : lit list list) =
  List.for_all
    (List.exists (fun l ->
         let v = var_of l in
         if is_neg l then not model.(v) else model.(v)))
    clauses

let stats s = (s.conflicts, s.decisions, s.propagations)
