lib/fuzz/gen.ml: Builder Constant Func Instr List Printf Prng Types Ub_ir Ub_support
