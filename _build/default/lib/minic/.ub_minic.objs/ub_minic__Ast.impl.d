lib/minic/ast.ml:
