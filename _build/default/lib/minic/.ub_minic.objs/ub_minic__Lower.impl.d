lib/minic/lower.ml: Ast Bitvec Builder Constant Func Instr List Option Parser Printf Types Ub_ir Ub_support
