(* Mini-C -> IR lowering.

   Scalars are lowered straight to SSA (structured control flow lets us
   place phis at if-joins and loop headers without a separate mem2reg
   pass, the way a careful frontend would).  Arrays and structs live in
   malloc'ed memory and are accessed through getelementptr inbounds.

   The Section 5.3 story is the [freeze_bitfields] flag: a bit-field
   store is load+mask+or+store of the container word, and the loaded
   word must be FROZEN — the first store to a freshly malloc'ed struct
   reads uninitialized (poison) bits, and without freeze the mask/or
   chain poisons the entire word, wiping the neighbouring fields.  This
   is the paper's one-line Clang change. *)

module Cparser = Parser (* Mini-C's own parser, before Ub_ir shadows it *)

open Ub_support
open Ub_ir
open Ast

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type config = { freeze_bitfields : bool }

let clang_legacy = { freeze_bitfields = false }
let clang_fixed = { freeze_bitfields = true }

(* struct layout *)
type fkind =
  | Plain of int * Types.t (* byte offset, IR type *)
  | Bits of int * int * int (* container word byte offset, bit offset, width *)

type layout = { size : int; by_name : (string * fkind) list }

let ir_ty_of_base = function
  | I8 -> Types.Int 8
  | I16 -> Types.Int 16
  | I32 -> Types.Int 32
  | I64 -> Types.Int 64
  | Array _ | Struct _ -> invalid_arg "ir_ty_of_base"

let layout_struct (sd : struct_def) : layout =
  let off = ref 0 in
  let bit = ref 0 in (* bit position within current container; -1 = none *)
  let in_container = ref false in
  let fields = ref [] in
  let close_container () =
    if !in_container then begin
      off := !off + 4;
      in_container := false;
      bit := 0
    end
  in
  List.iter
    (fun f ->
      match f.bits with
      | None ->
        close_container ();
        let ty = ir_ty_of_base f.fty in
        let sz = Types.store_size ty in
        (* align *)
        off := (!off + sz - 1) / sz * sz;
        fields := (f.fname, Plain (!off, ty)) :: !fields;
        off := !off + sz
      | Some w ->
        if w <= 0 || w > 32 then fail "bit-field %s has invalid width %d" f.fname w;
        if (not !in_container) || !bit + w > 32 then begin
          close_container ();
          (* align container to 4 *)
          off := (!off + 3) / 4 * 4;
          in_container := true;
          bit := 0
        end;
        fields := (f.fname, Bits (!off, !bit, w)) :: !fields;
        bit := !bit + w)
    sd.fields;
  close_container ();
  let size = max 4 ((!off + 3) / 4 * 4) in
  { size; by_name = List.rev !fields }

(* lowering context *)
type binding =
  | Scalar of Types.t * Instr.operand (* SSA value *)
  | Agg of agg

and agg = { ptr : Instr.operand; aty : Ast.ty; lay : layout option }

type venv = (string * binding) list

type ctx = {
  b : Builder.t;
  cfg : config;
  prog : program;
  layouts : (string * layout) list;
  ret_ty : Types.t option;
}

let find_struct ctx name =
  match List.assoc_opt name ctx.layouts with
  | Some l -> l
  | None -> fail "unknown struct %s" name

let func_sig ctx name : (Types.t option * Types.t list) option =
  List.find_map
    (fun (f : Ast.func) ->
      if f.name = name then
        Some
          ( Option.map ir_ty_of_base f.ret,
            List.map (fun (_, t) -> ir_ty_of_base t) f.params )
      else None)
    ctx.prog.funcs

(* integer conversion to a target width (signed) *)
let convert ctx (v : Instr.operand) ~(from : Types.t) ~(to_ : Types.t) : Instr.operand =
  if Types.equal from to_ then v
  else begin
    let fw = Types.bitwidth from and tw = Types.bitwidth to_ in
    if tw > fw then Builder.sext ctx.b ~from ~to_ v
    else Builder.trunc ctx.b ~from ~to_ v
  end

let i32 = Types.Int 32

(* lower an expression to (operand, type); all arithmetic happens at the
   unified width of the operands (min i32, C-style promotion) *)
let rec lower_expr (ctx : ctx) (env : venv ref) (e : expr) : Instr.operand * Types.t =
  match e with
  | Int_lit i -> (Instr.Const (Constant.Int (Bitvec.of_int64 ~width:32 i)), i32)
  | Var v -> (
    match List.assoc_opt v !env with
    | Some (Scalar (ty, op)) -> (op, ty)
    | Some (Agg _) -> fail "aggregate %s used as a value" v
    | None -> fail "unbound variable %s" v)
  | Cast (ty, e) ->
    let v, from = lower_expr ctx env e in
    let to_ = ir_ty_of_base ty in
    (convert ctx v ~from ~to_, to_)
  | Unop (Neg, e) ->
    let v, ty = lower_expr ctx env e in
    (Builder.sub ~attrs:Instr.nsw_only ctx.b ty (Builder.const_i ~width:(Types.bitwidth ty) 0) v, ty)
  | Unop (BNot, e) ->
    let v, ty = lower_expr ctx env e in
    (Builder.xor ctx.b ty v (Builder.const_i ~width:(Types.bitwidth ty) (-1)), ty)
  | Unop (LNot, e) ->
    let v, ty = lower_expr ctx env e in
    let z = Builder.icmp ctx.b Instr.Eq ty v (Builder.const_i ~width:(Types.bitwidth ty) 0) in
    (Builder.zext ctx.b ~from:(Types.Int 1) ~to_:i32 z, i32)
  | Binop ((LAnd | LOr) as op, a, b) ->
    (* short-circuit via ?: *)
    let zero = Int_lit 0L and one = Int_lit 1L in
    let nz e = Binop (Ne, e, Int_lit 0L) in
    if op = LAnd then lower_expr ctx env (Cond (a, nz b, zero))
    else lower_expr ctx env (Cond (a, one, nz b))
  | Binop (op, a, b) ->
    let va, ta = lower_expr ctx env a in
    let vb, tb = lower_expr ctx env b in
    let ty = if Types.bitwidth ta >= Types.bitwidth tb then ta else tb in
    let ty = if Types.bitwidth ty < 32 then i32 else ty in
    let va = convert ctx va ~from:ta ~to_:ty in
    let vb = convert ctx vb ~from:tb ~to_:ty in
    let cmp pred =
      let c = Builder.icmp ctx.b pred ty va vb in
      (Builder.zext ctx.b ~from:(Types.Int 1) ~to_:i32 c, i32)
    in
    (match op with
    | Add -> (Builder.add ~attrs:Instr.nsw_only ctx.b ty va vb, ty)
    | Sub -> (Builder.sub ~attrs:Instr.nsw_only ctx.b ty va vb, ty)
    | Mul -> (Builder.mul ~attrs:Instr.nsw_only ctx.b ty va vb, ty)
    | Div -> (Builder.sdiv ctx.b ty va vb, ty)
    | Rem -> (Builder.binop ctx.b Instr.SRem ty va vb, ty)
    | Shl -> (Builder.shl ctx.b ty va vb, ty)
    | Shr -> (Builder.ashr ctx.b ty va vb, ty)
    | BAnd -> (Builder.and_ ctx.b ty va vb, ty)
    | BOr -> (Builder.or_ ctx.b ty va vb, ty)
    | BXor -> (Builder.xor ctx.b ty va vb, ty)
    | Lt -> cmp Instr.Slt
    | Le -> cmp Instr.Sle
    | Gt -> cmp Instr.Sgt
    | Ge -> cmp Instr.Sge
    | Eq -> cmp Instr.Eq
    | Ne -> cmp Instr.Ne
    | LAnd | LOr -> assert false)
  | Cond (c, a, b) ->
    (* control flow with a phi (short-circuit semantics) *)
    let cv = lower_condition ctx env c in
    let lt = Builder.fresh_label ~prefix:"cnd.t" ctx.b in
    let lf = Builder.fresh_label ~prefix:"cnd.f" ctx.b in
    let lj = Builder.fresh_label ~prefix:"cnd.j" ctx.b in
    Builder.cond_br ctx.b cv lt lf;
    Builder.start_block ctx.b lt;
    let envt = ref !env in
    let va, ta = lower_expr ctx envt a in
    let end_t = Builder.current_label ctx.b in
    Builder.br ctx.b lj;
    Builder.start_block ctx.b lf;
    let envf = ref !env in
    let vb, tb = lower_expr ctx envf b in
    let ty = if Types.bitwidth ta >= Types.bitwidth tb then ta else tb in
    let vb = convert ctx vb ~from:tb ~to_:ty in
    let end_f = Builder.current_label ctx.b in
    Builder.br ctx.b lj;
    (* widen va in its own block if needed: we conservatively required
       matching types by converting vb; convert va at the join is not
       possible (wrong block), so convert in end_t retroactively is hard —
       instead require both converted pre-join: convert va inside lt *)
    Builder.start_block ctx.b lj;
    let va =
      if Types.equal ta ty then va
      else begin
        (* rare: re-lower with explicit cast *)
        ignore va;
        fail "conditional expression branches have different types; add a cast"
      end
    in
    let p = Builder.phi ctx.b ty [ (va, end_t); (vb, end_f) ] in
    (p, ty)
  | Assign (lv, rhs) ->
    let v, ty = lower_assign ctx env lv rhs in
    (v, ty)
  | Index (Var a, i) -> (
    match List.assoc_opt a !env with
    | Some (Agg { ptr; aty = Array (elt, _); _ }) ->
      let ety = ir_ty_of_base elt in
      let iv, ity = lower_expr ctx env i in
      let iv = convert ctx iv ~from:ity ~to_:i32 in
      let addr = Builder.gep ctx.b ~inbounds:true ~pointee:ety ptr [ (i32, iv) ] in
      (Builder.load ctx.b ety addr, ety)
    | _ -> fail "%s is not an array" a)
  | Index _ -> fail "array expression must be a variable"
  | Field (Var v, f) -> (
    match List.assoc_opt v !env with
    | Some (Agg { ptr; aty = Struct sn; lay = _ }) -> lower_field_read ctx env ptr sn f
    | _ -> fail "%s is not a struct" v)
  | Field _ -> fail "field base must be a variable"
  | Call (name, args) ->
    let sg = func_sig ctx name in
    let vals = List.map (fun a -> lower_expr ctx env a) args in
    let typed_args =
      match sg with
      | Some (_, ptys) ->
        (try List.map2 (fun (v, t) pt -> (pt, convert ctx v ~from:t ~to_:pt)) vals ptys
         with Invalid_argument _ -> fail "wrong arity calling %s" name)
      | None -> List.map (fun (v, t) -> (t, v)) vals
    in
    let rty = match sg with Some (r, _) -> r | None -> Some i32 in
    (match rty with
    | Some rt -> (Builder.call ctx.b (Some rt) name typed_args, rt)
    | None ->
      Builder.call_void ctx.b name typed_args;
      (Builder.const_i ~width:32 0, i32))

and lower_condition ctx env (e : expr) : Instr.operand =
  (* produce an i1 *)
  match e with
  | Binop ((Lt | Le | Gt | Ge | Eq | Ne) as op, a, b) ->
    let va, ta = lower_expr ctx env a in
    let vb, tb = lower_expr ctx env b in
    let ty = if Types.bitwidth ta >= Types.bitwidth tb then ta else tb in
    let ty = if Types.bitwidth ty < 32 then i32 else ty in
    let va = convert ctx va ~from:ta ~to_:ty in
    let vb = convert ctx vb ~from:tb ~to_:ty in
    let pred =
      match op with
      | Lt -> Instr.Slt
      | Le -> Instr.Sle
      | Gt -> Instr.Sgt
      | Ge -> Instr.Sge
      | Eq -> Instr.Eq
      | Ne -> Instr.Ne
      | _ -> assert false
    in
    Builder.icmp ctx.b pred ty va vb
  | _ ->
    let v, ty = lower_expr ctx env e in
    Builder.icmp ctx.b Instr.Ne ty v (Builder.const_i ~width:(Types.bitwidth ty) 0)

and lower_field_read ctx _env ptr sn f : Instr.operand * Types.t =
  let lay = find_struct ctx sn in
  match List.assoc_opt f lay.by_name with
  | Some (Plain (off, ty)) ->
    let addr8 =
      Builder.gep ctx.b ~inbounds:true ~pointee:(Types.Int 8) ptr
        [ (i32, Builder.const_i ~width:32 off) ]
    in
    let addr = Builder.bitcast ctx.b ~from:(Types.Ptr (Types.Int 8)) ~to_:(Types.Ptr ty) addr8 in
    (Builder.load ctx.b ty addr, ty)
  | Some (Bits (off, bit, w)) ->
    let addr8 =
      Builder.gep ctx.b ~inbounds:true ~pointee:(Types.Int 8) ptr
        [ (i32, Builder.const_i ~width:32 off) ]
    in
    let addr = Builder.bitcast ctx.b ~from:(Types.Ptr (Types.Int 8)) ~to_:(Types.Ptr i32) addr8 in
    let word = Builder.load ctx.b i32 addr in
    let shifted =
      if bit = 0 then word else Builder.lshr ctx.b i32 word (Builder.const_i ~width:32 bit)
    in
    let mask = if w >= 32 then -1 else (1 lsl w) - 1 in
    (Builder.and_ ctx.b i32 shifted (Builder.const_i ~width:32 mask), i32)
  | None -> fail "struct %s has no field %s" sn f

and lower_assign ctx env (lv : lvalue) (rhs : expr) : Instr.operand * Types.t =
  let v, vty = lower_expr ctx env rhs in
  match lv with
  | Lvar name -> (
    match List.assoc_opt name !env with
    | Some (Scalar (ty, _)) ->
      let v' = convert ctx v ~from:vty ~to_:ty in
      env := (name, Scalar (ty, v')) :: List.remove_assoc name !env;
      (v', ty)
    | Some (Agg _) -> fail "cannot assign to aggregate %s" name
    | None -> fail "unbound variable %s" name)
  | Lindex (a, i) -> (
    match List.assoc_opt a !env with
    | Some (Agg { ptr; aty = Array (elt, _); _ }) ->
      let ety = ir_ty_of_base elt in
      let iv, ity = lower_expr ctx env i in
      let iv = convert ctx iv ~from:ity ~to_:i32 in
      let addr = Builder.gep ctx.b ~inbounds:true ~pointee:ety ptr [ (i32, iv) ] in
      let v' = convert ctx v ~from:vty ~to_:ety in
      Builder.store ctx.b ety v' addr;
      (v', ety)
    | _ -> fail "%s is not an array" a)
  | Lfield (sv, f) -> (
    match List.assoc_opt sv !env with
    | Some (Agg { ptr; aty = Struct sn; _ }) -> (
      let lay = find_struct ctx sn in
      match List.assoc_opt f lay.by_name with
      | Some (Plain (off, ty)) ->
        let addr8 =
          Builder.gep ctx.b ~inbounds:true ~pointee:(Types.Int 8) ptr
            [ (i32, Builder.const_i ~width:32 off) ]
        in
        let addr =
          Builder.bitcast ctx.b ~from:(Types.Ptr (Types.Int 8)) ~to_:(Types.Ptr ty) addr8
        in
        let v' = convert ctx v ~from:vty ~to_:ty in
        Builder.store ctx.b ty v' addr;
        (v', ty)
      | Some (Bits (off, bit, w)) ->
        (* THE Section 5.3 lowering *)
        let addr8 =
          Builder.gep ctx.b ~inbounds:true ~pointee:(Types.Int 8) ptr
            [ (i32, Builder.const_i ~width:32 off) ]
        in
        let addr =
          Builder.bitcast ctx.b ~from:(Types.Ptr (Types.Int 8)) ~to_:(Types.Ptr i32) addr8
        in
        let word = Builder.load ctx.b i32 addr in
        let word =
          if ctx.cfg.freeze_bitfields then Builder.freeze ctx.b i32 word else word
        in
        let mask = if w >= 32 then -1 else (1 lsl w) - 1 in
        let cleared =
          Builder.and_ ctx.b i32 word
            (Builder.const_i ~width:32 (lnot (mask lsl bit)))
        in
        let v32 = convert ctx v ~from:vty ~to_:i32 in
        let vmasked = Builder.and_ ctx.b i32 v32 (Builder.const_i ~width:32 mask) in
        let vshift =
          if bit = 0 then vmasked
          else Builder.shl ctx.b i32 vmasked (Builder.const_i ~width:32 bit)
        in
        let neww = Builder.or_ ctx.b i32 cleared vshift in
        Builder.store ctx.b i32 neww addr;
        (vmasked, i32)
      | None -> fail "struct %s has no field %s" sn f)
    | _ -> fail "%s is not a struct" sv)

(* variables assigned anywhere in a statement list (scalars only) *)
let rec assigned_vars (stmts : stmt list) : string list =
  List.sort_uniq compare (List.concat_map assigned_in_stmt stmts)

and assigned_in_stmt = function
  | Expr e | Return (Some e) -> assigned_in_expr e
  | Return None -> []
  | Decl (_, _, Some e) -> assigned_in_expr e
  | Decl (_, _, None) -> []
  | If (c, t, e) -> assigned_in_expr c @ assigned_vars t @ assigned_vars e
  | While (c, b) -> assigned_in_expr c @ assigned_vars b
  | For (i, c, s, b) ->
    (match i with Some st -> assigned_in_stmt st | None -> [])
    @ (match c with Some e -> assigned_in_expr e | None -> [])
    @ (match s with Some e -> assigned_in_expr e | None -> [])
    @ assigned_vars b
  | Block b -> assigned_vars b

and assigned_in_expr = function
  | Assign (Lvar v, e) -> v :: assigned_in_expr e
  | Assign (_, e) -> assigned_in_expr e
  | Binop (_, a, b) -> assigned_in_expr a @ assigned_in_expr b
  | Unop (_, e) -> assigned_in_expr e
  | Cond (c, a, b) -> assigned_in_expr c @ assigned_in_expr a @ assigned_in_expr b
  | Index (a, i) -> assigned_in_expr a @ assigned_in_expr i
  | Field (e, _) -> assigned_in_expr e
  | Call (_, args) -> List.concat_map assigned_in_expr args
  | Cast (_, e) -> assigned_in_expr e
  | Int_lit _ | Var _ -> []

(* merge two environments at a join point with phis *)
let merge_envs ctx (env0 : venv) (envs : (venv * Instr.label) list) : venv =
  List.map
    (fun (name, b0) ->
      match b0 with
      | Agg _ -> (name, b0)
      | Scalar (ty, _) ->
        let values =
          List.map
            (fun (env, lbl) ->
              match List.assoc_opt name env with
              | Some (Scalar (_, op)) -> (op, lbl)
              | _ -> fail "variable %s lost in branch" name)
            envs
        in
        let all_same =
          match values with
          | [] -> true
          | (v0, _) :: rest -> List.for_all (fun (v, _) -> v = v0) rest
        in
        if all_same && values <> [] then (name, Scalar (ty, fst (List.hd values)))
        else (name, Scalar (ty, Builder.phi ctx.b ty values)))
    env0

exception Terminated

(* returns the updated env; raises Terminated if all paths returned *)
let rec lower_stmts ctx (env : venv ref) (stmts : stmt list) : unit =
  List.iter (fun st -> lower_stmt ctx env st) stmts

and lower_stmt ctx (env : venv ref) (st : stmt) : unit =
  match st with
  | Expr e -> ignore (lower_expr ctx env e)
  | Block b -> lower_stmts ctx env b
  | Return e ->
    (match (e, ctx.ret_ty) with
    | Some e, Some rt ->
      let v, ty = lower_expr ctx env e in
      Builder.ret ctx.b rt (convert ctx v ~from:ty ~to_:rt)
    | None, None -> Builder.ret_void ctx.b
    | Some _, None -> fail "return with value in void function"
    | None, Some rt -> Builder.ret ctx.b rt (Builder.const_i ~width:(Types.bitwidth rt) 0));
    raise Terminated
  | Decl (ty, name, init) -> (
    match ty with
    | I8 | I16 | I32 | I64 ->
      let irty = ir_ty_of_base ty in
      let v =
        match init with
        | Some e ->
          let v, vty = lower_expr ctx env e in
          convert ctx v ~from:vty ~to_:irty
        | None -> Builder.undef irty (* uninitialized local *)
      in
      env := (name, Scalar (irty, v)) :: List.remove_assoc name !env
    | Array (elt, n) ->
      let ety = ir_ty_of_base elt in
      let bytes = Types.store_size ety * n in
      let p =
        Builder.call ctx.b (Some (Types.Ptr ety)) "malloc"
          [ (i32, Builder.const_i ~width:32 bytes) ]
      in
      env := (name, Agg { ptr = p; aty = ty; lay = None }) :: List.remove_assoc name !env;
      (match init with Some _ -> fail "array initializers are not supported" | None -> ())
    | Struct sn ->
      let lay = find_struct ctx sn in
      let p =
        Builder.call ctx.b (Some (Types.Ptr (Types.Int 8))) "malloc"
          [ (i32, Builder.const_i ~width:32 lay.size) ]
      in
      env := (name, Agg { ptr = p; aty = ty; lay = Some lay }) :: List.remove_assoc name !env)
  | If (c, then_, else_) -> (
    let cv = lower_condition ctx env c in
    let lt = Builder.fresh_label ~prefix:"if.t" ctx.b in
    let lf = Builder.fresh_label ~prefix:"if.f" ctx.b in
    let lj = Builder.fresh_label ~prefix:"if.j" ctx.b in
    Builder.cond_br ctx.b cv lt lf;
    Builder.start_block ctx.b lt;
    let env_t = ref !env in
    let t_result =
      try
        lower_stmts ctx env_t then_;
        let e = Builder.current_label ctx.b in
        Builder.br ctx.b lj;
        Some (!env_t, e)
      with Terminated -> None
    in
    Builder.start_block ctx.b lf;
    let env_f = ref !env in
    let f_result =
      try
        lower_stmts ctx env_f else_;
        let e = Builder.current_label ctx.b in
        Builder.br ctx.b lj;
        Some (!env_f, e)
      with Terminated -> None
    in
    match (t_result, f_result) with
    | None, None -> raise Terminated
    | Some (e1, l1), None ->
      Builder.start_block ctx.b lj;
      env := e1;
      ignore l1
    | None, Some (e2, l2) ->
      Builder.start_block ctx.b lj;
      env := e2;
      ignore l2
    | Some (e1, l1), Some (e2, l2) ->
      Builder.start_block ctx.b lj;
      env := merge_envs ctx !env [ (e1, l1); (e2, l2) ])
  | While (c, body) -> lower_loop ctx env ~cond:(Some c) ~step:None ~body
  | For (init, cond, step, body) ->
    (match init with Some st -> lower_stmt ctx env st | None -> ());
    lower_loop ctx env ~cond ~step ~body

and lower_loop ctx (env : venv ref) ~cond ~step ~body : unit =
  let header = Builder.fresh_label ~prefix:"loop.h" ctx.b in
  let lbody = Builder.fresh_label ~prefix:"loop.b" ctx.b in
  let lexit = Builder.fresh_label ~prefix:"loop.x" ctx.b in
  let pre_label = Builder.current_label ctx.b in
  (* variables needing phis: assigned in cond/step/body and scalar *)
  let mutated =
    assigned_vars (body @ (match step with Some e -> [ Expr e ] | None -> []))
    @ (match cond with Some c -> assigned_in_expr c | None -> [])
  in
  let mutated =
    List.filter
      (fun v -> match List.assoc_opt v !env with Some (Scalar _) -> true | _ -> false)
      (List.sort_uniq compare mutated)
  in
  Builder.br ctx.b header;
  Builder.start_block ctx.b header;
  (* reserve phi names; incomings patched after body lowering *)
  let phi_names =
    List.map
      (fun v ->
        match List.assoc_opt v !env with
        | Some (Scalar (ty, init_op)) ->
          let name = Builder.fresh ~prefix:("lp." ^ v) ctx.b in
          (v, ty, init_op, name)
        | _ -> assert false)
      mutated
  in
  (* bind loop vars to their phi names while lowering cond and body *)
  let env_in_loop =
    List.fold_left
      (fun acc (v, ty, _, name) -> (v, Scalar (ty, Instr.Var name)) :: List.remove_assoc v acc)
      !env phi_names
  in
  let env_h = ref env_in_loop in
  (match cond with
  | Some c ->
    let cv = lower_condition ctx env_h c in
    Builder.cond_br ctx.b cv lbody lexit
  | None -> Builder.br ctx.b lbody);
  let header_end = header in
  ignore header_end;
  Builder.start_block ctx.b lbody;
  let env_b = ref !env_h in
  let body_result =
    try
      lower_stmts ctx env_b body;
      (match step with Some e -> ignore (lower_expr ctx env_b e) | None -> ());
      let e = Builder.current_label ctx.b in
      Builder.br ctx.b header;
      Some e
    with Terminated -> None
  in
  (* now create the phis at the START of the header block *)
  let incomings v =
    let init = List.find_map (fun (v', _, i, _) -> if v' = v then Some i else None) phi_names in
    let init = Option.get init in
    match body_result with
    | Some latch_label ->
      let latch_val =
        match List.assoc_opt v !env_b with
        | Some (Scalar (_, op)) -> op
        | _ -> fail "loop variable %s lost" v
      in
      [ (init, pre_label); (latch_val, latch_label) ]
    | None -> [ (init, pre_label) ]
  in
  List.iter
    (fun (v, ty, _, name) ->
      Builder.prepend_phi ctx.b header ~name ty (incomings v))
    phi_names;
  Builder.start_block ctx.b lexit;
  (* after the loop, variables hold the header phi values *)
  env := !env_h

(* -------------------- functions and programs ----------------------- *)

let lower_func (cfg : config) (prog : program) (f : Ast.func) : Func.t =
  let layouts = List.map (fun sd -> (sd.sname, layout_struct sd)) prog.structs in
  let ret_ty = Option.map ir_ty_of_base f.ret in
  let b =
    Builder.create ~name:f.name
      ~args:(List.map (fun (p, t) -> (p, ir_ty_of_base t)) f.params)
      ?ret_ty ()
  in
  let ctx = { b; cfg; prog; layouts; ret_ty } in
  Builder.start_block b "entry";
  let env =
    ref (List.map (fun (p, t) -> (p, Scalar (ir_ty_of_base t, Instr.Var p))) f.params)
  in
  (try
     lower_stmts ctx env f.body;
     (* fall-through return *)
     match ret_ty with
     | Some rt -> Builder.ret b rt (Builder.const_i ~width:(Types.bitwidth rt) 0)
     | None -> Builder.ret_void b
   with Terminated -> ());
  (* any dangling unterminated block (e.g. join after return-in-both-arms)
     gets an unreachable *)
  Builder.terminate_dangling b;
  Builder.finish b

let lower_program ?(cfg = clang_fixed) (prog : program) : Func.module_ =
  { Func.funcs = List.map (lower_func cfg prog) prog.funcs }

let compile ?(cfg = clang_fixed) (src : string) : Func.module_ =
  lower_program ~cfg (Cparser.parse_program src)
