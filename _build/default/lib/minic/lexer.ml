(* Mini-C lexer: hand-written, line-tracking.  C-style // and /* */
   comments. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type token =
  | TInt of int64
  | TIdent of string
  | TKw of string (* int, char, short, long, if, else, while, for, return, struct, void *)
  | TPunct of string (* operators and punctuation *)
  | TEof

let keywords =
  [ "int8"; "int16"; "int"; "int64"; "if"; "else"; "while"; "for"; "return"; "struct"; "void" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

let punct3 = [ ">>="; "<<=" ]
let punct2 =
  [ "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^=" ]

let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
      while !i < n && src.[!i] <> '\n' do incr i done
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      while !i + 1 < n && not (src.[!i] = '*' && src.[!i + 1] = '/') do
        if src.[!i] = '\n' then incr line;
        incr i
      done;
      i := !i + 2
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && (is_digit src.[!i] || src.[!i] = 'x' || src.[!i] = 'X'
                       || (src.[!i] >= 'a' && src.[!i] <= 'f')
                       || (src.[!i] >= 'A' && src.[!i] <= 'F')) do
        incr i
      done;
      push (TInt (Int64.of_string (String.sub src start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let s = String.sub src start (!i - start) in
      if List.mem s keywords then push (TKw s) else push (TIdent s)
    end
    else begin
      let try_punct lst len =
        if !i + len <= n then begin
          let s = String.sub src !i len in
          if List.mem s lst then begin
            push (TPunct s);
            i := !i + len;
            true
          end
          else false
        end
        else false
      in
      if try_punct punct3 3 then ()
      else if try_punct punct2 2 then ()
      else begin
        let s = String.make 1 c in
        if String.contains "+-*/%<>=!&|^~(){}[];,.:?" c then begin
          push (TPunct s);
          incr i
        end
        else fail "line %d: unexpected character %C" !line c
      end
    end
  done;
  push TEof;
  List.rev !toks
