(* Mini-C: the source language of our benchmark suite.  A small C subset
   with fixed-width signed integers, fixed-size arrays, structs with
   BIT-FIELDS (the Section 5.3 protagonists), and the usual statements.

   Semantics notes (mirroring C as compiled by Clang):
   - signed +, -, * lower to nsw instructions (overflow is deferred UB);
   - /, % lower to sdiv/srem (division by zero is immediate UB);
   - <<, >> lower to shl/ashr (oversized shifts are deferred UB);
   - uninitialized locals are uninitialized (undef/poison per mode);
   - bit-field stores lower to load+mask+or+store of the container word,
     with or without the freeze fix. *)

type ty =
  | I8
  | I16
  | I32
  | I64
  | Array of ty * int (* element type (base only), length *)
  | Struct of string

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr
  | BAnd | BOr | BXor
  | Lt | Le | Gt | Ge | Eq | Ne
  | LAnd | LOr (* short-circuit *)

type unop = Neg | BNot | LNot

type expr =
  | Int_lit of int64
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Assign of lvalue * expr
  | Index of expr * expr (* a[i] where a is an array variable *)
  | Field of expr * string (* s.f *)
  | Call of string * expr list
  | Cast of ty * expr
  | Cond of expr * expr * expr (* e ? a : b *)

and lvalue =
  | Lvar of string
  | Lindex of string * expr (* array[i] *)
  | Lfield of string * string (* struct_var.field *)

type stmt =
  | Expr of expr
  | Decl of ty * string * expr option
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * expr option * stmt list
  | Return of expr option
  | Block of stmt list

(* A struct field: a plain field or a bit-field of [bits] width packed
   into i32 container words in declaration order. *)
type field = { fname : string; fty : ty; bits : int option }

type struct_def = { sname : string; fields : field list }

type func = {
  name : string;
  ret : ty option;
  params : (string * ty) list;
  body : stmt list;
}

type program = { structs : struct_def list; funcs : func list }

let base_bits = function
  | I8 -> 8
  | I16 -> 16
  | I32 -> 32
  | I64 -> 64
  | Array _ | Struct _ -> invalid_arg "base_bits: aggregate"

let is_base = function I8 | I16 | I32 | I64 -> true | Array _ | Struct _ -> false
