(* Mini-C parser: recursive descent with precedence climbing for
   expressions. *)

open Ast

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type st = { mutable toks : (Lexer.token * int) list }

let peek s = match s.toks with (t, _) :: _ -> t | [] -> Lexer.TEof
let line s = match s.toks with (_, l) :: _ -> l | [] -> 0
let advance s = match s.toks with _ :: r -> s.toks <- r | [] -> ()

let next s =
  let t = peek s in
  advance s;
  t

let expect_punct s p =
  match next s with
  | Lexer.TPunct q when q = p -> ()
  | t ->
    fail "line %d: expected '%s', found %s" (line s) p
      (match t with
      | Lexer.TPunct q -> "'" ^ q ^ "'"
      | Lexer.TIdent i -> i
      | Lexer.TKw k -> k
      | Lexer.TInt _ -> "<int>"
      | Lexer.TEof -> "<eof>")

let ident s =
  match next s with
  | Lexer.TIdent i -> i
  | _ -> fail "line %d: expected identifier" (line s)

let base_ty_of_kw = function
  | "int8" -> Some I8
  | "int16" -> Some I16
  | "int" -> Some I32
  | "int64" -> Some I64
  | _ -> None

let parse_base_ty s =
  match next s with
  | Lexer.TKw k -> (
    match base_ty_of_kw k with
    | Some t -> t
    | None ->
      if k = "struct" then Struct (ident s)
      else fail "line %d: expected a type, got '%s'" (line s) k)
  | _ -> fail "line %d: expected a type" (line s)

(* -------------------- expressions ---------------------------------- *)

let binop_of_punct = function
  | "*" -> Some (Mul, 10)
  | "/" -> Some (Div, 10)
  | "%" -> Some (Rem, 10)
  | "+" -> Some (Add, 9)
  | "-" -> Some (Sub, 9)
  | "<<" -> Some (Shl, 8)
  | ">>" -> Some (Shr, 8)
  | "<" -> Some (Lt, 7)
  | "<=" -> Some (Le, 7)
  | ">" -> Some (Gt, 7)
  | ">=" -> Some (Ge, 7)
  | "==" -> Some (Eq, 6)
  | "!=" -> Some (Ne, 6)
  | "&" -> Some (BAnd, 5)
  | "^" -> Some (BXor, 4)
  | "|" -> Some (BOr, 3)
  | "&&" -> Some (LAnd, 2)
  | "||" -> Some (LOr, 1)
  | _ -> None

let rec parse_expr s : expr = parse_assign s

and parse_assign s : expr =
  let lhs = parse_ternary s in
  match peek s with
  | Lexer.TPunct "=" ->
    advance s;
    let rhs = parse_assign s in
    Assign (lvalue_of lhs, rhs)
  | Lexer.TPunct p
    when String.length p >= 2 && p.[String.length p - 1] = '='
         && binop_of_punct (String.sub p 0 (String.length p - 1)) <> None ->
    advance s;
    let op, _ = Option.get (binop_of_punct (String.sub p 0 (String.length p - 1))) in
    let rhs = parse_assign s in
    Assign (lvalue_of lhs, Binop (op, lhs, rhs))
  | _ -> lhs

and lvalue_of = function
  | Var v -> Lvar v
  | Index (Var a, i) -> Lindex (a, i)
  | Field (Var v, f) -> Lfield (v, f)
  | _ -> fail "invalid assignment target"

and parse_ternary s : expr =
  let c = parse_binary s 1 in
  match peek s with
  | Lexer.TPunct "?" ->
    advance s;
    let a = parse_expr s in
    expect_punct s ":";
    let b = parse_ternary s in
    Cond (c, a, b)
  | _ -> c

and parse_binary s min_prec : expr =
  let lhs = ref (parse_unary s) in
  let continue_ = ref true in
  while !continue_ do
    match peek s with
    | Lexer.TPunct p -> (
      match binop_of_punct p with
      | Some (op, prec) when prec >= min_prec ->
        advance s;
        let rhs = parse_binary s (prec + 1) in
        lhs := Binop (op, !lhs, rhs)
      | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary s : expr =
  match peek s with
  | Lexer.TPunct "-" ->
    advance s;
    Unop (Neg, parse_unary s)
  | Lexer.TPunct "~" ->
    advance s;
    Unop (BNot, parse_unary s)
  | Lexer.TPunct "!" ->
    advance s;
    Unop (LNot, parse_unary s)
  | Lexer.TPunct "(" -> (
    (* cast or parenthesized expression *)
    advance s;
    match peek s with
    | Lexer.TKw k when base_ty_of_kw k <> None ->
      advance s;
      let ty = Option.get (base_ty_of_kw k) in
      expect_punct s ")";
      Cast (ty, parse_unary s)
    | _ ->
      let e = parse_expr s in
      expect_punct s ")";
      parse_postfix s e)
  | _ -> parse_primary s

and parse_postfix s e : expr =
  match peek s with
  | Lexer.TPunct "[" ->
    advance s;
    let i = parse_expr s in
    expect_punct s "]";
    parse_postfix s (Index (e, i))
  | Lexer.TPunct "." ->
    advance s;
    let f = ident s in
    parse_postfix s (Field (e, f))
  | _ -> e

and parse_primary s : expr =
  match next s with
  | Lexer.TInt i -> Int_lit i
  | Lexer.TIdent name -> (
    match peek s with
    | Lexer.TPunct "(" ->
      advance s;
      let args = ref [] in
      if peek s <> Lexer.TPunct ")" then begin
        let rec loop () =
          args := parse_expr s :: !args;
          if peek s = Lexer.TPunct "," then begin
            advance s;
            loop ()
          end
        in
        loop ()
      end;
      expect_punct s ")";
      parse_postfix s (Call (name, List.rev !args))
    | _ -> parse_postfix s (Var name))
  | _ -> fail "line %d: expected an expression" (line s)

(* -------------------- statements ----------------------------------- *)

let rec parse_stmt s : stmt =
  match peek s with
  | Lexer.TPunct "{" ->
    advance s;
    let stmts = parse_stmts_until s "}" in
    Block stmts
  | Lexer.TKw "if" ->
    advance s;
    expect_punct s "(";
    let c = parse_expr s in
    expect_punct s ")";
    let then_ = parse_stmt_as_list s in
    let else_ =
      match peek s with
      | Lexer.TKw "else" ->
        advance s;
        parse_stmt_as_list s
      | _ -> []
    in
    If (c, then_, else_)
  | Lexer.TKw "while" ->
    advance s;
    expect_punct s "(";
    let c = parse_expr s in
    expect_punct s ")";
    While (c, parse_stmt_as_list s)
  | Lexer.TKw "for" ->
    advance s;
    expect_punct s "(";
    let init =
      if peek s = Lexer.TPunct ";" then begin
        advance s;
        None
      end
      else begin
        let st = parse_simple_stmt s in
        expect_punct s ";";
        Some st
      end
    in
    let cond =
      if peek s = Lexer.TPunct ";" then None
      else Some (parse_expr s)
    in
    expect_punct s ";";
    let step = if peek s = Lexer.TPunct ")" then None else Some (parse_expr s) in
    expect_punct s ")";
    For (init, cond, step, parse_stmt_as_list s)
  | Lexer.TKw "return" ->
    advance s;
    if peek s = Lexer.TPunct ";" then begin
      advance s;
      Return None
    end
    else begin
      let e = parse_expr s in
      expect_punct s ";";
      Return (Some e)
    end
  | _ ->
    let st = parse_simple_stmt s in
    expect_punct s ";";
    st

and parse_stmt_as_list s : stmt list =
  match parse_stmt s with Block b -> b | st -> [ st ]

(* declaration or expression (no trailing ';') *)
and parse_simple_stmt s : stmt =
  match peek s with
  | Lexer.TKw k when base_ty_of_kw k <> None || k = "struct" ->
    let ty = parse_base_ty s in
    let name = ident s in
    let ty =
      match peek s with
      | Lexer.TPunct "[" ->
        advance s;
        let n =
          match next s with
          | Lexer.TInt i -> Int64.to_int i
          | _ -> fail "line %d: expected array length" (line s)
        in
        expect_punct s "]";
        Array (ty, n)
      | _ -> ty
    in
    let init =
      match peek s with
      | Lexer.TPunct "=" ->
        advance s;
        Some (parse_expr s)
      | _ -> None
    in
    Decl (ty, name, init)
  | _ -> Expr (parse_expr s)

and parse_stmts_until s closer : stmt list =
  let stmts = ref [] in
  while peek s <> Lexer.TPunct closer do
    stmts := parse_stmt s :: !stmts
  done;
  advance s;
  List.rev !stmts

(* -------------------- top level ------------------------------------ *)

let parse_struct s : struct_def =
  (* 'struct' consumed by caller *)
  let sname = ident s in
  expect_punct s "{";
  let fields = ref [] in
  while peek s <> Lexer.TPunct "}" do
    let fty = parse_base_ty s in
    let fname = ident s in
    let bits =
      match peek s with
      | Lexer.TPunct ":" ->
        advance s;
        (match next s with
        | Lexer.TInt i -> Some (Int64.to_int i)
        | _ -> fail "line %d: expected bit-field width" (line s))
      | _ -> None
    in
    expect_punct s ";";
    fields := { fname; fty; bits } :: !fields
  done;
  advance s;
  expect_punct s ";";
  { sname; fields = List.rev !fields }

let parse_program (src : string) : program =
  let s = { toks = Lexer.tokenize src } in
  let structs = ref [] in
  let funcs = ref [] in
  while peek s <> Lexer.TEof do
    match peek s with
    | Lexer.TKw "struct" when (match s.toks with
                               | _ :: (Lexer.TIdent _, _) :: (Lexer.TPunct "{", _) :: _ -> true
                               | _ -> false) ->
      advance s;
      structs := parse_struct s :: !structs
    | _ ->
      (* function: ret-type name(params) { body } *)
      let ret =
        match peek s with
        | Lexer.TKw "void" ->
          advance s;
          None
        | _ -> Some (parse_base_ty s)
      in
      let name = ident s in
      expect_punct s "(";
      let params = ref [] in
      if peek s <> Lexer.TPunct ")" then begin
        let rec loop () =
          let ty = parse_base_ty s in
          let p = ident s in
          params := (p, ty) :: !params;
          if peek s = Lexer.TPunct "," then begin
            advance s;
            loop ()
          end
        in
        loop ()
      end;
      expect_punct s ")";
      expect_punct s "{";
      let body = parse_stmts_until s "}" in
      funcs := { name; ret; params = List.rev !params; body } :: !funcs
  done;
  { structs = List.rev !structs; funcs = List.rev !funcs }
