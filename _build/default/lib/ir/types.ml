(* The type language of the IR, following Figure 4 of the paper:

     ty ::= isz | ty* | < sz x isz > | < sz x ty* >

   Integers have arbitrary bitwidth 1..64 (the paper allows arbitrary
   width; 64 is plenty for every example and experiment in it).  Pointers
   are 32 bits wide, as assumed in Section 4.2.  Vectors have a
   statically-known element count and a scalar (non-vector) element
   type. *)

type t =
  | Int of int (* bitwidth *)
  | Ptr of t (* pointee type *)
  | Vec of int * t (* element count, scalar element type *)

let i1 = Int 1
let i8 = Int 8
let i16 = Int 16
let i32 = Int 32
let i64 = Int 64

let pointer_bits = 32

let rec pp ppf = function
  | Int w -> Fmt.pf ppf "i%d" w
  | Ptr ty -> Fmt.pf ppf "%a*" pp ty
  | Vec (n, ty) -> Fmt.pf ppf "<%d x %a>" n pp ty

let to_string t = Fmt.str "%a" pp t

let rec equal a b =
  match (a, b) with
  | Int w1, Int w2 -> w1 = w2
  | Ptr t1, Ptr t2 -> equal t1 t2
  | Vec (n1, t1), Vec (n2, t2) -> n1 = n2 && equal t1 t2
  | (Int _ | Ptr _ | Vec _), _ -> false

let is_scalar = function Int _ | Ptr _ -> true | Vec _ -> false
let is_integer = function Int _ -> true | _ -> false
let is_pointer = function Ptr _ -> true | _ -> false
let is_vector = function Vec _ -> true | _ -> false

let is_bool = function Int 1 -> true | _ -> false

(* The boolean type of the same shape: i1 for scalars, <n x i1> for
   vectors.  This is the result type of [icmp]. *)
let bool_shape = function
  | Vec (n, _) -> Vec (n, Int 1)
  | Int _ | Ptr _ -> Int 1

let element = function
  | Vec (_, ty) -> ty
  | ty -> ty

let vec_length = function Vec (n, _) -> Some n | _ -> None

(* Width in bits of a scalar as laid out in registers / memory. *)
let scalar_bitwidth = function
  | Int w -> w
  | Ptr _ -> pointer_bits
  | Vec _ -> invalid_arg "Types.scalar_bitwidth: vector"

let rec bitwidth = function
  | Int w -> w
  | Ptr _ -> pointer_bits
  | Vec (n, ty) -> n * bitwidth ty

(* Size in bytes when stored to memory: bitwidth rounded up.  i32 -> 4,
   i1 -> 1, pointers -> 4.  GEP arithmetic uses this. *)
let store_size ty = (bitwidth ty + 7) / 8

let valid_int_width w = w >= 1 && w <= 64

let rec well_formed = function
  | Int w -> valid_int_width w
  | Ptr ty -> well_formed ty && is_scalar ty
  | Vec (n, ty) -> n >= 1 && n <= 64 && is_scalar ty && well_formed ty

(* Can [bitcast] convert between these two?  Same total bitwidth, and we
   additionally require both sides to be first-class (always true here). *)
let bitcast_compatible a b = bitwidth a = bitwidth b

let compare = Stdlib.compare
