(* Textual form of the IR, closely following LLVM's assembly syntax so
   that the paper's examples can be pasted in nearly verbatim. *)

open Instr

let pp_var ppf v = Fmt.pf ppf "%%%s" v
let pp_label ppf l = Fmt.pf ppf "label %%%s" l

let pp_operand ppf = function
  | Var v -> pp_var ppf v
  | Const c -> Constant.pp ppf c

let pp_typed_operand ty ppf op = Fmt.pf ppf "%a %a" Types.pp ty pp_operand op

let pp_attrs op ppf { nsw; nuw; exact } =
  ignore op;
  if nuw then Fmt.pf ppf "nuw ";
  if nsw then Fmt.pf ppf "nsw ";
  if exact then Fmt.pf ppf "exact "

let pp_insn ppf (named : named) =
  (match named.def with
  | Some v -> Fmt.pf ppf "%a = " pp_var v
  | None -> ());
  match named.ins with
  | Binop (op, attrs, ty, a, b) ->
    Fmt.pf ppf "%s %a%a %a, %a" (binop_name op) (pp_attrs op) attrs Types.pp ty pp_operand a
      pp_operand b
  | Icmp (p, ty, a, b) ->
    Fmt.pf ppf "icmp %s %a %a, %a" (pred_name p) Types.pp ty pp_operand a pp_operand b
  | Select (c, ty, a, b) ->
    let cty = Types.bool_shape ty in
    Fmt.pf ppf "select %a %a, %a %a, %a %a" Types.pp cty pp_operand c Types.pp ty pp_operand a
      Types.pp ty pp_operand b
  | Conv (op, from, x, to_) ->
    Fmt.pf ppf "%s %a %a to %a" (conv_name op) Types.pp from pp_operand x Types.pp to_
  | Bitcast (from, x, to_) ->
    Fmt.pf ppf "bitcast %a %a to %a" Types.pp from pp_operand x Types.pp to_
  | Freeze (ty, x) -> Fmt.pf ppf "freeze %a %a" Types.pp ty pp_operand x
  | Phi (ty, incoming) ->
    Fmt.pf ppf "phi %a %a" Types.pp ty
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (v, l) -> Fmt.pf ppf "[ %a, %%%s ]" pp_operand v l))
      incoming
  | Gep { inbounds; pointee; base; indices } ->
    Fmt.pf ppf "getelementptr %s%a, %a %a%a"
      (if inbounds then "inbounds " else "")
      Types.pp pointee Types.pp (Types.Ptr pointee) pp_operand base
      (Fmt.list ~sep:Fmt.nop (fun ppf (t, v) -> Fmt.pf ppf ", %a %a" Types.pp t pp_operand v))
      indices
  | Load (ty, p) -> Fmt.pf ppf "load %a, %a %a" Types.pp ty Types.pp (Types.Ptr ty) pp_operand p
  | Store (ty, v, p) ->
    Fmt.pf ppf "store %a %a, %a %a" Types.pp ty pp_operand v Types.pp (Types.Ptr ty) pp_operand p
  | Call (ret, callee, args) ->
    Fmt.pf ppf "call %s @%s(%a)"
      (match ret with Some t -> Types.to_string t | None -> "void")
      callee
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (t, v) -> Fmt.pf ppf "%a %a" Types.pp t pp_operand v))
      args
  | Extractelement (vty, v, i) ->
    Fmt.pf ppf "extractelement %a %a, i32 %a" Types.pp vty pp_operand v pp_operand i
  | Insertelement (vty, v, e, i) ->
    Fmt.pf ppf "insertelement %a %a, %a %a, i32 %a" Types.pp vty pp_operand v Types.pp
      (Types.element vty) pp_operand e pp_operand i

let pp_term ppf = function
  | Ret (ty, x) -> Fmt.pf ppf "ret %a %a" Types.pp ty pp_operand x
  | Ret_void -> Fmt.pf ppf "ret void"
  | Br l -> Fmt.pf ppf "br %a" pp_label l
  | Cond_br (c, t, e) -> Fmt.pf ppf "br i1 %a, %a, %a" pp_operand c pp_label t pp_label e
  | Unreachable -> Fmt.pf ppf "unreachable"

let pp_block ppf (b : Func.block) =
  Fmt.pf ppf "%s:@." b.label;
  List.iter (fun i -> Fmt.pf ppf "  %a@." pp_insn i) b.insns;
  Fmt.pf ppf "  %a@." pp_term b.term

let pp_func ppf (fn : Func.t) =
  Fmt.pf ppf "define %s @%s(%a) {@."
    (match fn.ret_ty with Some t -> Types.to_string t | None -> "void")
    fn.name
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (v, t) -> Fmt.pf ppf "%a %a" Types.pp t pp_var v))
    fn.args;
  List.iter (fun b -> pp_block ppf b) fn.blocks;
  Fmt.pf ppf "}@."

let pp_module ppf (m : Func.module_) =
  Fmt.list ~sep:(Fmt.any "@.") pp_func ppf m.funcs

let func_to_string fn = Fmt.str "%a" pp_func fn
let module_to_string m = Fmt.str "%a" pp_module m
let insn_to_string i = Fmt.str "%a" pp_insn i
