(* Functions, basic blocks, and modules.  A function's entry block is the
   first in [blocks].  Blocks keep phis interleaved with other
   instructions, but the validator enforces that phis come first. *)

type block = {
  label : Instr.label;
  insns : Instr.named list;
  term : Instr.terminator;
}

type t = {
  name : string;
  args : (Instr.var * Types.t) list;
  ret_ty : Types.t option;
  blocks : block list;
}

type module_ = { funcs : t list }

let entry fn =
  match fn.blocks with
  | [] -> invalid_arg (Printf.sprintf "Func.entry: %s has no blocks" fn.name)
  | b :: _ -> b

let find_block fn label = List.find_opt (fun b -> b.label = label) fn.blocks

let find_block_exn fn label =
  match find_block fn label with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Func.find_block: no block %%%s in @%s" label fn.name)

let block_labels fn = List.map (fun b -> b.label) fn.blocks

(* Predecessors of each block, in deterministic order. *)
let predecessors fn : (Instr.label * Instr.label list) list =
  let tbl = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace tbl b.label []) fn.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt tbl s with
          | Some ps -> Hashtbl.replace tbl s (b.label :: ps)
          | None -> ())
        (Instr.successors b.term))
    fn.blocks;
  List.map (fun b -> (b.label, List.rev (Hashtbl.find tbl b.label))) fn.blocks

let preds_of fn label =
  match List.assoc_opt label (predecessors fn) with Some ps -> ps | None -> []

(* All definitions in the function: arguments and instruction results,
   with their types. *)
let defs fn : (Instr.var * Types.t) list =
  let insn_defs =
    List.concat_map
      (fun b ->
        List.filter_map
          (fun { Instr.def; ins } ->
            match (def, Instr.result_ty ins) with
            | Some v, Some ty -> Some (v, ty)
            | _ -> None)
          b.insns)
      fn.blocks
  in
  fn.args @ insn_defs

let def_ty fn v = List.assoc_opt v (defs fn)

let find_def fn v : Instr.named option =
  List.find_map
    (fun b -> List.find_opt (fun { Instr.def; _ } -> def = Some v) b.insns)
    fn.blocks

(* Block containing the definition of [v], if it is an instruction
   result. *)
let defining_block fn v =
  List.find_opt (fun b -> List.exists (fun { Instr.def; _ } -> def = Some v) b.insns) fn.blocks

let num_insns fn =
  List.fold_left (fun acc b -> acc + List.length b.insns + 1 (* terminator *)) 0 fn.blocks

let count_insns fn p =
  List.fold_left
    (fun acc b -> acc + List.length (List.filter (fun n -> p n.Instr.ins) b.insns))
    0 fn.blocks

let num_freeze fn = count_insns fn (function Instr.Freeze _ -> true | _ -> false)

(* Map every instruction (dropping an instruction by returning []). *)
let map_insns fn f =
  { fn with
    blocks = List.map (fun b -> { b with insns = List.concat_map f b.insns }) fn.blocks
  }

(* Replace all uses of variable [v] with operand [by], everywhere
   (instructions and terminators). *)
let replace_uses fn ~v ~by =
  let subst = function Instr.Var x when x = v -> by | op -> op in
  { fn with
    blocks =
      List.map
        (fun b ->
          { b with
            insns = List.map (fun n -> { n with Instr.ins = Instr.map_operands subst n.Instr.ins }) b.insns;
            term = Instr.map_term_operands subst b.term;
          })
        fn.blocks
  }

(* Number of (syntactic) uses of a register in the function. *)
let use_count (fn : t) (v : Instr.var) : int =
  let count_in_ops ops =
    List.length (List.filter (function Instr.Var x -> x = v | Instr.Const _ -> false) ops)
  in
  List.fold_left
    (fun acc b ->
      List.fold_left (fun acc n -> acc + count_in_ops (Instr.operands n.Instr.ins)) acc b.insns
      + count_in_ops (Instr.term_operands b.term))
    0 fn.blocks

(* Fresh-name generation: smallest %tN not used in the function. *)
let fresh_var fn prefix =
  let used = List.map fst (defs fn) in
  let rec go i =
    let cand = Printf.sprintf "%s%d" prefix i in
    if List.mem cand used then go (i + 1) else cand
  in
  go 0

let fresh_label fn prefix =
  let used = block_labels fn in
  let rec go i =
    let cand = Printf.sprintf "%s%d" prefix i in
    if List.mem cand used then go (i + 1) else cand
  in
  go 0

(* Structural equality up to nothing (exact equality of the printed
   form is what the LNT-diff experiment compares). *)
let equal (a : t) (b : t) = a = b

let find_func m name = List.find_opt (fun f -> f.name = name) m.funcs

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "no function @%s in module" name)
