lib/ir/instr.ml: Constant List Types
