lib/ir/builder.ml: Constant Func Instr List Printf Types Validate
