lib/ir/constant.ml: Bitvec Fmt List Types Ub_support
