lib/ir/validate.ml: Constant Func Hashtbl Instr List Printer Printf Types
