lib/ir/parser.ml: Bitvec Constant Func Instr List Option Printf String Types Ub_support
