lib/ir/func.ml: Hashtbl Instr List Printf Types
