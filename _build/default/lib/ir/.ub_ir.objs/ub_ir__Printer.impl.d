lib/ir/printer.ml: Constant Fmt Func Instr List Types
