(* IR-level constants.  [Undef] and [Poison] are constants syntactically
   (they can appear anywhere an operand can); their *meaning* is given by
   the semantics library, and whether [Undef] is even allowed depends on
   the semantics mode (the proposed semantics of Section 4 removes it). *)

open Ub_support

type t =
  | Int of Bitvec.t (* type is Int (width) *)
  | Null of Types.t (* the null pointer of a given pointer type *)
  | Vec of Types.t * t list (* vector type and per-element constants *)
  | Undef of Types.t
  | Poison of Types.t

let ty = function
  | Int bv -> Types.Int (Bitvec.width bv)
  | Null t -> t
  | Vec (t, _) -> t
  | Undef t -> t
  | Poison t -> t

let of_int ~width i = Int (Bitvec.of_int ~width i)
let bool b = of_int ~width:1 (if b then 1 else 0)
let zero ty_ =
  match ty_ with
  | Types.Int w -> Int (Bitvec.zero w)
  | Types.Ptr _ -> Null ty_
  | Types.Vec (n, elt) ->
    let z =
      match elt with
      | Types.Int w -> Int (Bitvec.zero w)
      | Types.Ptr _ -> Null elt
      | Types.Vec _ -> invalid_arg "Constant.zero: nested vector"
    in
    Vec (ty_, List.init n (fun _ -> z))

let rec contains_undef = function
  | Undef _ -> true
  | Vec (_, cs) -> List.exists contains_undef cs
  | Int _ | Null _ | Poison _ -> false

let rec contains_poison = function
  | Poison _ -> true
  | Vec (_, cs) -> List.exists contains_poison cs
  | Int _ | Null _ | Undef _ -> false

let rec equal a b =
  match (a, b) with
  | Int x, Int y -> Bitvec.equal x y
  | Null t1, Null t2 -> Types.equal t1 t2
  | Vec (t1, xs), Vec (t2, ys) ->
    Types.equal t1 t2 && (try List.for_all2 equal xs ys with Invalid_argument _ -> false)
  | Undef t1, Undef t2 -> Types.equal t1 t2
  | Poison t1, Poison t2 -> Types.equal t1 t2
  | (Int _ | Null _ | Vec _ | Undef _ | Poison _), _ -> false

let rec pp ppf = function
  | Int bv -> Fmt.pf ppf "%s" (Bitvec.to_string bv)
  | Null _ -> Fmt.pf ppf "null"
  | Vec (_, cs) ->
    Fmt.pf ppf "<%a>"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf c -> Fmt.pf ppf "%a %a" Types.pp (ty c) pp c))
      cs
  | Undef _ -> Fmt.pf ppf "undef"
  | Poison _ -> Fmt.pf ppf "poison"

let to_string c = Fmt.str "%a" pp c
