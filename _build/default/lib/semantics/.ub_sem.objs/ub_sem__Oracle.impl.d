lib/semantics/oracle.ml: Bitvec Int64 List Prng Ub_support
