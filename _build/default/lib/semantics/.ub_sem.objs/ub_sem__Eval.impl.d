lib/semantics/eval.ml: Array Bitvec Instr Int64 Memory Mode Oracle Printf Types Ub_ir Ub_support Value
