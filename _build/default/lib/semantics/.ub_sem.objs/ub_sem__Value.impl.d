lib/semantics/value.ml: Array Bitvec Constant Fmt List Mode Stdlib Types Ub_ir Ub_support
