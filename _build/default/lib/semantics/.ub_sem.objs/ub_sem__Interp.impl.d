lib/semantics/interp.ml: Array Bitvec Eval Func Hashtbl Instr List Memory Mode Oracle Printf Types Ub_ir Ub_support Value
