lib/semantics/mode.ml: Fmt List Printf
