lib/semantics/memory.ml: Array Bitvec Hashtbl Int64 List Printf String Types Ub_ir Ub_support Value
