(* The memory of Section 4.2: a partial map from 32-bit addresses to
   bitwise-defined bytes (<8 x i1> with per-bit poison/undef).  On top of
   the raw map we keep an allocation table so loads and stores can be
   checked for validity — accessing outside any live allocation is
   immediate UB, as is access through a poison address. *)

open Ub_support
open Ub_ir

type byte = Value.bit array (* length 8, LSB first *)

type allocation = { base : int64; size : int; mutable live : bool }

type t = {
  bytes : (int64, byte) Hashtbl.t;
  mutable allocs : allocation list;
  mutable next_base : int64;
}

let create () = { bytes = Hashtbl.create 64; allocs = []; next_base = 0x1000L }

let copy t =
  { bytes = Hashtbl.copy t.bytes;
    allocs = List.map (fun a -> { a with live = a.live }) t.allocs;
    next_base = t.next_base;
  }

let addr_space = 0x1_0000_0000L (* 2^32 *)

(* Allocate [size] bytes; returns the base address.  Contents start
   uninitialized (all Bundef). *)
let alloc t ~size =
  if size <= 0 then invalid_arg "Memory.alloc: non-positive size";
  let base = t.next_base in
  let nb = Int64.add base (Int64.of_int size) in
  if Int64.unsigned_compare nb addr_space >= 0 then failwith "Memory.alloc: address space exhausted";
  (* round next base up for alignment-friendly addresses *)
  t.next_base <- Int64.logand (Int64.add nb 15L) (Int64.lognot 15L);
  t.allocs <- { base; size; live = true } :: t.allocs;
  for i = 0 to size - 1 do
    Hashtbl.replace t.bytes (Int64.add base (Int64.of_int i)) (Array.make 8 Value.Bundef)
  done;
  Bitvec.of_int64 ~width:Types.pointer_bits base

let free t addr =
  let a = Bitvec.to_uint64 addr in
  match List.find_opt (fun al -> Int64.equal al.base a && al.live) t.allocs with
  | Some al -> al.live <- false
  | None -> failwith "Memory.free: not an allocation base"

(* Is the byte range [addr, addr+len) inside a single live allocation? *)
let valid_range t addr len =
  let a = Bitvec.to_uint64 addr in
  List.exists
    (fun al ->
      al.live
      && Int64.unsigned_compare a al.base >= 0
      && Int64.unsigned_compare (Int64.add a (Int64.of_int len))
           (Int64.add al.base (Int64.of_int al.size))
           <= 0)
    t.allocs

(* Load [nbytes] bytes starting at [addr]; [None] if the access is
   invalid.  Result is a flat bit array, LSB of the first byte first
   (little-endian). *)
let load_bits t addr ~nbytes : Value.bit array option =
  if not (valid_range t addr nbytes) then None
  else begin
    let a = Bitvec.to_uint64 addr in
    let out = Array.make (nbytes * 8) Value.Bundef in
    for i = 0 to nbytes - 1 do
      match Hashtbl.find_opt t.bytes (Int64.add a (Int64.of_int i)) with
      | Some byte -> Array.blit byte 0 out (i * 8) 8
      | None -> () (* inside an allocation => always present *)
    done;
    Some out
  end

(* Store a flat bit array (length divisible by 8 after padding).  Bits
   beyond the value's width within the last byte are left untouched only
   if the value is not byte-aligned — we pad with Bundef to the byte
   boundary, which models LLVM's "padding is undef". *)
let store_bits t addr (bits : Value.bit array) : bool =
  let nbits = Array.length bits in
  let nbytes = (nbits + 7) / 8 in
  if not (valid_range t addr nbytes) then false
  else begin
    let a = Bitvec.to_uint64 addr in
    for i = 0 to nbytes - 1 do
      let byte = Array.make 8 Value.Bundef in
      for j = 0 to 7 do
        let k = (i * 8) + j in
        if k < nbits then byte.(j) <- bits.(k)
      done;
      Hashtbl.replace t.bytes (Int64.add a (Int64.of_int i)) byte
    done;
    true
  end

(* A deterministic fingerprint of the live memory contents, used to
   compare final memories across executions. *)
let fingerprint t : string =
  let entries =
    Hashtbl.fold
      (fun addr byte acc ->
        let s =
          String.concat ""
            (List.map
               (fun b ->
                 match b with Value.B0 -> "0" | Value.B1 -> "1" | Value.Bpoison -> "p" | Value.Bundef -> "u")
               (Array.to_list byte))
        in
        (addr, s) :: acc)
      t.bytes []
  in
  let entries = List.sort compare entries in
  String.concat ";" (List.map (fun (a, s) -> Printf.sprintf "%Lx=%s" a s) entries)
