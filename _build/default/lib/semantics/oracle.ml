(* Nondeterminism oracles.

   The operational semantics is nondeterministic in three places: each
   *use* of an undef value materializes an arbitrary concrete value; each
   dynamic execution of [freeze] on poison/undef picks an arbitrary
   concrete value; and, in Branch_nondet modes, branching on poison picks
   an arm.  An oracle resolves these choices, making a run deterministic
   and replayable.

   The [Explorer] sub-module enumerates *all* choice sequences (DFS with
   backtracking over recorded decision points), which is how the
   enumeration-based refinement checker computes the full behaviour set
   of a small function. *)

open Ub_support

type t = {
  (* [choose ~width] returns a concrete bitvector of the given width. *)
  choose : width:int -> Bitvec.t;
  (* [choose_bool] for branch-arm picks. *)
  choose_bool : unit -> bool;
}

(* Everything-zero oracle: undef materializes as 0, frozen poison is 0,
   nondet branches take the false arm.  Matches the backend lowering of
   pinned undef registers and is the default for deterministic runs. *)
let zeros = { choose = (fun ~width -> Bitvec.zero width); choose_bool = (fun () -> false) }

let of_prng rng =
  { choose = (fun ~width -> Prng.bitvec rng ~width);
    choose_bool = (fun () -> Prng.bool rng);
  }

(* Replay a recorded list of raw choices; zero-extends past the end. *)
let replay (raw : int64 list) =
  let rest = ref raw in
  let next () =
    match !rest with
    | [] -> 0L
    | x :: xs ->
      rest := xs;
      x
  in
  { choose = (fun ~width -> Bitvec.of_int64 ~width (next ()));
    choose_bool = (fun () -> not (Int64.equal (next ()) 0L));
  }

module Explorer = struct
  (* DFS over the tree of oracle decisions.  A run is made with a forced
     prefix of decisions; fresh decision points beyond the prefix take
     value 0 and are recorded together with their domain size.  After the
     run, [advance] increments the last decision that still has room and
     drops everything after it; when no decision can be advanced the
     exploration is complete.

     Domains: a [width]-bit choice has 2^width values (width is capped by
     [max_width_bits] — wider choices are sampled at 0 and all-ones only,
     a documented approximation used nowhere in the experiments, which
     run at small widths); a boolean choice has 2. *)

  type decision = { domain : int; mutable taken : int }

  type state = {
    mutable prefix : decision list; (* reverse order: most recent first *)
    mutable cursor : decision list; (* suffix of prefix still to replay, in order *)
    max_width_bits : int;
  }

  let create ?(max_width_bits = 12) () = { prefix = []; cursor = []; max_width_bits }

  (* Begin a run: replay decisions already in [prefix] in order. *)
  let start st = st.cursor <- List.rev st.prefix

  let decide st ~domain ~(value_of : int -> 'a) : 'a =
    match st.cursor with
    | d :: rest ->
      st.cursor <- rest;
      value_of d.taken
    | [] ->
      let d = { domain; taken = 0 } in
      st.prefix <- d :: st.prefix;
      value_of 0

  let oracle st : t =
    { choose =
        (fun ~width ->
          if width <= st.max_width_bits then
            decide st ~domain:(1 lsl width) ~value_of:(fun i -> Bitvec.of_int ~width i)
          else
            decide st ~domain:2 ~value_of:(fun i ->
                if i = 0 then Bitvec.zero width else Bitvec.all_ones width));
      choose_bool = (fun () -> decide st ~domain:2 ~value_of:(fun i -> i = 1));
    }

  (* Move to the next unexplored choice sequence; false when done. *)
  let advance st =
    let rec go = function
      | [] -> false
      | d :: rest ->
        if d.taken + 1 < d.domain then begin
          d.taken <- d.taken + 1;
          st.prefix <- d :: rest;
          true
        end
        else go rest
    in
    go st.prefix

  (* Total runs explored so far would be the product of domains; callers
     bound exploration with [max_runs] in the driver below. *)
end

(* Run [f] once per choice sequence, collecting results, up to
   [max_runs] runs (raises [Exhausted] beyond that — callers treat it as
   "unknown").  [f] receives a fresh oracle each run. *)
exception Exhausted

let explore ?(max_runs = 100_000) ?max_width_bits (f : t -> 'a) : 'a list =
  let st = Explorer.create ?max_width_bits () in
  let results = ref [] in
  let runs = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr runs;
    if !runs > max_runs then raise Exhausted;
    Explorer.start st;
    results := f (Explorer.oracle st) :: !results;
    continue_ := Explorer.advance st
  done;
  List.rev !results
