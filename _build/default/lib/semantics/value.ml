(* Runtime values and the bit-level representation of Section 4.2.

   A scalar is poison, undef (old modes only), or a concrete bitvector
   (integers and 32-bit pointer addresses share the representation; the
   type system of the IR keeps them apart).  Vector values are element-
   wise, exactly as in the paper's semantic domains:

     [[isz]]      = Num(sz) + {poison}            (+ {undef} in old modes)
     [[<sz x ty>]] = {0..sz-1} -> [[ty]]

   Bits (for ty-down / ty-up and for memory bytes) are four-valued:
   0, 1, poison, undef. *)

open Ub_support
open Ub_ir

type scalar =
  | Poison
  | Undef
  | Conc of Bitvec.t (* concrete; width = scalar bitwidth of the type *)

type t =
  | Scalar of scalar
  | Vector of scalar array

type bit = B0 | B1 | Bpoison | Bundef

let scalar_pp ppf = function
  | Poison -> Fmt.pf ppf "poison"
  | Undef -> Fmt.pf ppf "undef"
  | Conc bv -> Fmt.pf ppf "%s" (Bitvec.to_string bv)

let pp ppf = function
  | Scalar s -> scalar_pp ppf s
  | Vector es -> Fmt.pf ppf "<%a>" (Fmt.array ~sep:(Fmt.any ", ") scalar_pp) es

let to_string v = Fmt.str "%a" pp v

let scalar_equal a b =
  match (a, b) with
  | Poison, Poison | Undef, Undef -> true
  | Conc x, Conc y -> Bitvec.equal x y
  | (Poison | Undef | Conc _), _ -> false

let equal a b =
  match (a, b) with
  | Scalar x, Scalar y -> scalar_equal x y
  | Vector xs, Vector ys ->
    Array.length xs = Array.length ys && Array.for_all2 scalar_equal xs ys
  | (Scalar _ | Vector _), _ -> false

let compare = Stdlib.compare

let poison_of_ty (ty : Types.t) =
  match ty with
  | Types.Vec (n, _) -> Vector (Array.make n Poison)
  | _ -> Scalar Poison

let undef_of_ty (ty : Types.t) =
  match ty with
  | Types.Vec (n, _) -> Vector (Array.make n Undef)
  | _ -> Scalar Undef

let of_bitvec bv = Scalar (Conc bv)
let of_int ~width i = of_bitvec (Bitvec.of_int ~width i)
let bool b = of_int ~width:1 (if b then 1 else 0)

let is_poison = function Scalar Poison -> true | _ -> false
let contains_poison = function
  | Scalar Poison -> true
  | Scalar _ -> false
  | Vector es -> Array.exists (function Poison -> true | _ -> false) es

let contains_undef = function
  | Scalar Undef -> true
  | Scalar _ -> false
  | Vector es -> Array.exists (function Undef -> true | _ -> false) es

let as_scalar = function
  | Scalar s -> s
  | Vector _ -> invalid_arg "Value.as_scalar: vector"

let as_vector n = function
  | Vector es when Array.length es = n -> es
  | Vector _ -> invalid_arg "Value.as_vector: wrong length"
  | Scalar _ -> invalid_arg "Value.as_vector: scalar"

(* View any value as an array of lanes: scalars are 1-wide. *)
let lanes = function
  | Scalar s -> [| s |]
  | Vector es -> es

let of_lanes (ty : Types.t) lanes =
  match ty with
  | Types.Vec _ -> Vector lanes
  | _ ->
    if Array.length lanes <> 1 then invalid_arg "Value.of_lanes";
    Scalar lanes.(0)

(* The value of an IR constant. *)
let rec of_constant (c : Constant.t) : t =
  match c with
  | Constant.Int bv -> Scalar (Conc bv)
  | Constant.Null _ -> Scalar (Conc (Bitvec.zero Types.pointer_bits))
  | Constant.Undef ty -> undef_of_ty ty
  | Constant.Poison ty -> poison_of_ty ty
  | Constant.Vec (_, cs) ->
    let scalars =
      List.map
        (fun c ->
          match of_constant c with
          | Scalar s -> s
          | Vector _ -> invalid_arg "Value.of_constant: nested vector")
        cs
    in
    Vector (Array.of_list scalars)

(* ------------------------------------------------------------------ *)
(* ty-down / ty-up (Section 4.2)                                       *)
(* ------------------------------------------------------------------ *)

let scalar_to_bits ~width (s : scalar) : bit array =
  match s with
  | Poison -> Array.make width Bpoison
  | Undef -> Array.make width Bundef
  | Conc bv ->
    if Bitvec.width bv <> width then invalid_arg "Value.scalar_to_bits: width mismatch";
    Array.init width (fun i -> if Bitvec.get_bit bv i then B1 else B0)

(* ty-down: value -> low-level bit representation (LSB first). *)
let ty_down (ty : Types.t) (v : t) : bit array =
  match (ty, v) with
  | Types.Vec (n, elt), Vector es ->
    if Array.length es <> n then invalid_arg "Value.ty_down: vector length";
    let w = Types.scalar_bitwidth elt in
    Array.concat (Array.to_list (Array.map (scalar_to_bits ~width:w) es))
  | Types.Vec _, Scalar _ -> invalid_arg "Value.ty_down: scalar for vector type"
  | _, Scalar s -> scalar_to_bits ~width:(Types.scalar_bitwidth ty) s
  | _, Vector _ -> invalid_arg "Value.ty_down: vector for scalar type"

(* ty-up for one scalar lane: any poison bit poisons the lane; otherwise
   any undef bit makes it undef; otherwise concrete.  [normalize_loaded]
   below then collapses Undef to Poison in modes without undef / with
   poison-on-uninitialized-load. *)
let bits_to_scalar (bits : bit array) : scalar =
  if Array.exists (( = ) Bpoison) bits then Poison
  else if Array.exists (( = ) Bundef) bits then Undef
  else begin
    let bv = ref (Bitvec.zero (Array.length bits)) in
    Array.iteri (fun i b -> if b = B1 then bv := Bitvec.set_bit !bv i true) bits;
    Conc !bv
  end

let normalize_loaded ~(mode : Mode.t) (s : scalar) : scalar =
  match s with
  | Undef when (not mode.Mode.undef_enabled) || mode.Mode.load_uninit_poison -> Poison
  | s -> s

(* ty-up: bit representation -> value. *)
let ty_up ~(mode : Mode.t) (ty : Types.t) (bits : bit array) : t =
  if Array.length bits <> Types.bitwidth ty then invalid_arg "Value.ty_up: width mismatch";
  match ty with
  | Types.Vec (n, elt) ->
    let w = Types.scalar_bitwidth elt in
    Vector
      (Array.init n (fun i ->
           normalize_loaded ~mode (bits_to_scalar (Array.sub bits (i * w) w))))
  | _ -> Scalar (normalize_loaded ~mode (bits_to_scalar bits))

(* Bitcast per Figure 5: ty2-up (ty1-down v).  Note this is *not* the
   identity on mixed vectors: a single poison lane of the source poisons
   every destination lane it overlaps. *)
let bitcast ~mode ~from ~to_ v = ty_up ~mode to_ (ty_down from v)

(* Refinement order on scalars: can a source scalar [s] justify a target
   scalar [t]?  poison covers everything; undef covers any non-poison;
   concrete covers only itself. *)
let scalar_covers ~src ~tgt =
  match (src, tgt) with
  | Poison, _ -> true
  | Undef, Poison -> false
  | Undef, _ -> true
  | Conc a, Conc b -> Bitvec.equal a b
  | Conc _, (Poison | Undef) -> false

let covers ~src ~tgt =
  match (src, tgt) with
  | Scalar a, Scalar b -> scalar_covers ~src:a ~tgt:b
  | Vector xs, Vector ys ->
    Array.length xs = Array.length ys
    && Array.for_all2 (fun a b -> scalar_covers ~src:a ~tgt:b) xs ys
  | (Scalar _ | Vector _), _ -> false
