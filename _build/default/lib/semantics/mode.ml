(* A *semantics mode* pins down every choice the paper shows LLVM's
   passes disagreeing about (Section 3), plus the paper's proposed
   resolution (Section 4).  The interpreter, the refinement checker and
   the soundness-matrix experiment are all parameterized by a mode, which
   is how we reproduce statements like "loop unswitching and GVN require
   different semantics for branch on poison in order to be correct". *)

type branch_on_poison =
  | Branch_ub (* branching on poison is immediate UB (GVN's view; proposed) *)
  | Branch_nondet (* branching on poison is a nondeterministic choice (loop unswitching's view) *)

type select_sem =
  | Select_conditional
      (* poison condition => poison result; otherwise the chosen arm is
         forwarded and the other arm is ignored (Figure 5 / proposed) *)
  | Select_nondet_cond
      (* poison condition => nondeterministically pick an arm; matches
         the Branch_nondet view of br, keeping select~br equivalence *)
  | Select_arith
      (* poison *anywhere* (condition or either arm) => poison; the
         LangRef reading that justifies select<->arithmetic rewrites *)
  | Select_ub_cond
      (* poison condition => immediate UB; matches the Branch_ub view of
         br, keeping the select<->br lowering sound in that direction *)

type t = {
  name : string;
  undef_enabled : bool; (* does the [undef] value exist? *)
  branch_on_poison : branch_on_poison;
  select_sem : select_sem;
  div_by_poison_ub : bool;
      (* division with poison divisor: true => immediate UB (LLVM/Alive
         practice), false => poison (the literal "all ops return poison"
         reading); see DESIGN.md *)
  load_uninit_poison : bool;
      (* loads of uninitialized bits: false => undef (old), true =>
         poison (proposed; Section 5.3 relies on this) *)
}

(* The paper's proposed semantics (Section 4): no undef, freeze exists,
   branch on poison is UB, select conditionally forwards poison. *)
let proposed =
  { name = "proposed";
    undef_enabled = false;
    branch_on_poison = Branch_ub;
    select_sem = Select_conditional;
    div_by_poison_ub = true;
    load_uninit_poison = true;
  }

(* The "old LLVM" candidate semantics of Section 3.  There is no single
   old semantics — that is the paper's point — so we name the views taken
   by individual passes. *)

(* Loop unswitching's view: hoisting a branch out of a loop assumes
   branch-on-poison is a nondeterministic choice (Section 3.3). *)
let old_unswitch =
  { name = "old-unswitch";
    undef_enabled = true;
    branch_on_poison = Branch_nondet;
    select_sem = Select_nondet_cond;
    div_by_poison_ub = true;
    load_uninit_poison = false;
  }

(* GVN's view: replacing a value by a syntactically-equal one assumes
   branch-on-poison (and select-on-poison) is UB (Section 3.3). *)
let old_gvn =
  { name = "old-gvn";
    undef_enabled = true;
    branch_on_poison = Branch_ub;
    select_sem = Select_ub_cond;
    div_by_poison_ub = true;
    load_uninit_poison = false;
  }

(* The LangRef reading used by select->arithmetic InstCombine rewrites:
   select is poison if any operand is (Section 3.4). *)
let old_langref =
  { name = "old-langref";
    undef_enabled = true;
    branch_on_poison = Branch_nondet;
    select_sem = Select_arith;
    div_by_poison_ub = true;
    load_uninit_poison = false;
  }

(* The SimplifyCFG view: phi->select needs select to forward only the
   dynamically chosen value, with a non-UB condition (Section 3.4). *)
let old_simplifycfg =
  { name = "old-simplifycfg";
    undef_enabled = true;
    branch_on_poison = Branch_nondet;
    select_sem = Select_conditional;
    div_by_poison_ub = true;
    load_uninit_poison = false;
  }

(* All candidate "old" semantics, for the soundness matrix. *)
let old_candidates = [ old_unswitch; old_gvn; old_langref; old_simplifycfg ]

let all = proposed :: old_candidates

let find name = List.find_opt (fun m -> m.name = name) all

let pp ppf m = Fmt.pf ppf "%s" m.name

let describe m =
  Printf.sprintf
    "%s: undef=%b, br(poison)=%s, select=%s, div-by-poison=%s, uninit-load=%s"
    m.name m.undef_enabled
    (match m.branch_on_poison with Branch_ub -> "UB" | Branch_nondet -> "nondet")
    (match m.select_sem with
    | Select_conditional -> "conditional"
    | Select_nondet_cond -> "nondet-cond"
    | Select_arith -> "arith"
    | Select_ub_cond -> "UB-cond")
    (if m.div_by_poison_ub then "UB" else "poison")
    (if m.load_uninit_poison then "poison" else "undef")
