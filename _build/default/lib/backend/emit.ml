(* Assembly emission and object-code size accounting.

   Sizes approximate x86-64 encodings: a REX prefix byte is charged when
   any operand register is one of r8..r15, immediates are charged at
   1/4/8 bytes, memory operands with displacement get their disp bytes,
   and r13-based addressing pays the mandatory disp8 (the encoding quirk
   behind the LEA penalty). *)

open Ub_support

let needs_rex (r : Mir.reg) =
  match r with
  | Mir.Preg i -> i >= 5 && Target.name_of i <> "rbx" (* r8..r15 *)
  | Mir.Vreg _ -> false

let reg_name = function
  | Mir.Preg i -> "%" ^ Target.name_of i
  | Mir.Vreg v -> Printf.sprintf "%%v%d" v

let operand_str = function
  | Mir.Reg r -> reg_name r
  | Mir.Imm i -> Printf.sprintf "$%Ld" i

let addr_str (a : Mir.addr) =
  let idx =
    match a.Mir.index with
    | Some i -> Printf.sprintf ",%s,%d" (reg_name i) a.Mir.scale
    | None -> ""
  in
  Printf.sprintf "%d(%s%s)" a.Mir.disp (reg_name a.Mir.base) idx

let imm_bytes (i : int64) =
  if Int64.compare i (-128L) >= 0 && Int64.compare i 127L <= 0 then 1
  else if Int64.compare i (-2147483648L) >= 0 && Int64.compare i 2147483647L <= 0 then 4
  else 8

let disp_bytes (a : Mir.addr) =
  let forced_disp8 =
    (* rbp/r13 base encodings require a displacement byte even for 0 *)
    match a.Mir.base with
    | Mir.Preg i when i = Target.r13 -> true
    | _ -> false
  in
  if a.Mir.disp = 0 && not forced_disp8 then 0
  else if a.Mir.disp >= -128 && a.Mir.disp <= 127 then 1
  else 4

let rex_of_regs rs = if List.exists needs_rex rs then 1 else 0

let inst_size (i : Mir.inst) : int =
  match i with
  | Mir.Mov (w, d, Mir.Imm imm) ->
    let base = if w = Mir.W64 && imm_bytes imm = 8 then 10 else 1 + 4 in
    base + rex_of_regs [ d ]
  | Mir.Mov (_, d, Mir.Reg s) -> 2 + rex_of_regs [ d; s ]
  | Mir.Bin (_, _, d, Mir.Imm imm) -> 2 + imm_bytes imm + rex_of_regs [ d ]
  | Mir.Bin (_, _, d, Mir.Reg s) -> 2 + rex_of_regs [ d; s ]
  | Mir.Neg (_, r) | Mir.Not (_, r) -> 2 + rex_of_regs [ r ]
  | Mir.Div { lhs; rhs; _ } -> 2 + 2 + 1 + rex_of_regs [ lhs; rhs ] (* mov+cqo/xor+div *)
  | Mir.Cmp (_, a, Mir.Imm imm) -> 2 + imm_bytes imm + rex_of_regs [ a ]
  | Mir.Cmp (_, a, Mir.Reg b) -> 2 + rex_of_regs [ a; b ]
  | Mir.Test (_, a, b) -> 2 + rex_of_regs [ a; b ]
  | Mir.Setcc (_, d) -> 3 + rex_of_regs [ d ]
  | Mir.Cmov (_, _, d, s) -> 3 + rex_of_regs [ d; s ]
  | Mir.Movsx { dst; src; _ } -> 3 + rex_of_regs [ dst; src ]
  | Mir.Movzx { dst; src; _ } -> 3 + rex_of_regs [ dst; src ]
  | Mir.Lea { dst; addr } ->
    2 + disp_bytes addr
    + (match addr.Mir.index with Some _ -> 1 (* SIB *) | None -> 0)
    + rex_of_regs (dst :: Mir.regs_of_addr addr)
  | Mir.Load (_, d, a) -> 2 + disp_bytes a + rex_of_regs (d :: Mir.regs_of_addr a)
  | Mir.Store (_, a, Mir.Reg s) -> 2 + disp_bytes a + rex_of_regs (s :: Mir.regs_of_addr a)
  | Mir.Store (_, a, Mir.Imm imm) -> 2 + disp_bytes a + imm_bytes imm + rex_of_regs (Mir.regs_of_addr a)
  | Mir.Copy (_, d, s) -> 2 + rex_of_regs [ d; s ]
  | Mir.Undef_def _ -> 0 (* no code: the register is simply not initialized *)
  | Mir.Call _ -> 5
  | Mir.Push r | Mir.Pop r -> 1 + rex_of_regs [ r ]
  | Mir.Jmp _ -> 2
  | Mir.Jcc _ -> 2
  | Mir.Ret _ -> 1
  | Mir.Spill_store (_, r) | Mir.Spill_load (_, r) -> 4 + rex_of_regs [ r ]

let func_size (f : Mir.func) : int =
  List.fold_left
    (fun acc (b : Mir.block) -> acc + Util.sum_int (List.map inst_size b.Mir.insts))
    0 f.Mir.blocks

let inst_str (i : Mir.inst) : string =
  let w_suffix = function Mir.W8 -> "b" | Mir.W16 -> "w" | Mir.W32 -> "l" | Mir.W64 -> "q" in
  match i with
  | Mir.Mov (w, d, s) -> Printf.sprintf "mov%s %s, %s" (w_suffix w) (operand_str s) (reg_name d)
  | Mir.Bin (k, w, d, s) ->
    let op =
      match k with
      | Mir.BAdd -> "add" | Mir.BSub -> "sub" | Mir.BImul -> "imul"
      | Mir.BAnd -> "and" | Mir.BOr -> "or" | Mir.BXor -> "xor"
      | Mir.BShl -> "shl" | Mir.BShr -> "shr" | Mir.BSar -> "sar"
    in
    Printf.sprintf "%s%s %s, %s" op (w_suffix w) (operand_str s) (reg_name d)
  | Mir.Neg (w, r) -> Printf.sprintf "neg%s %s" (w_suffix w) (reg_name r)
  | Mir.Not (w, r) -> Printf.sprintf "not%s %s" (w_suffix w) (reg_name r)
  | Mir.Div { signed; width; lhs; rhs; _ } ->
    Printf.sprintf "%s%s %s ; lhs=%s" (if signed then "idiv" else "div") (w_suffix width)
      (reg_name rhs) (reg_name lhs)
  | Mir.Cmp (w, a, b) -> Printf.sprintf "cmp%s %s, %s" (w_suffix w) (operand_str b) (reg_name a)
  | Mir.Test (w, a, b) -> Printf.sprintf "test%s %s, %s" (w_suffix w) (reg_name b) (reg_name a)
  | Mir.Setcc (c, d) -> Printf.sprintf "set%s %s" (Mir.cond_name c) (reg_name d)
  | Mir.Cmov (c, w, d, s) ->
    Printf.sprintf "cmov%s%s %s, %s" (Mir.cond_name c) (w_suffix w) (reg_name s) (reg_name d)
  | Mir.Movsx { dst; src; _ } -> Printf.sprintf "movsx %s, %s" (reg_name src) (reg_name dst)
  | Mir.Movzx { dst; src; _ } -> Printf.sprintf "movzx %s, %s" (reg_name src) (reg_name dst)
  | Mir.Lea { dst; addr } -> Printf.sprintf "lea %s, %s" (addr_str addr) (reg_name dst)
  | Mir.Load (w, d, a) -> Printf.sprintf "mov%s %s, %s" (w_suffix w) (addr_str a) (reg_name d)
  | Mir.Store (w, a, s) -> Printf.sprintf "mov%s %s, %s" (w_suffix w) (operand_str s) (addr_str a)
  | Mir.Copy (w, d, s) -> Printf.sprintf "mov%s %s, %s ; freeze/phi" (w_suffix w) (reg_name s) (reg_name d)
  | Mir.Undef_def r -> Printf.sprintf "; %s = undef (pinned)" (reg_name r)
  | Mir.Call (n, _, _) -> Printf.sprintf "call %s" n
  | Mir.Push r -> Printf.sprintf "push %s" (reg_name r)
  | Mir.Pop r -> Printf.sprintf "pop %s" (reg_name r)
  | Mir.Jmp l -> Printf.sprintf "jmp .%s" l
  | Mir.Jcc (c, l) -> Printf.sprintf "j%s .%s" (Mir.cond_name c) l
  | Mir.Ret _ -> "ret"
  | Mir.Spill_store (s, r) -> Printf.sprintf "movq %s, %d(%%rsp)" (reg_name r) (8 * s)
  | Mir.Spill_load (s, r) -> Printf.sprintf "movq %d(%%rsp), %s" (8 * s) (reg_name r)

let func_str (f : Mir.func) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s:\n" f.Mir.mname);
  List.iter
    (fun (b : Mir.block) ->
      Buffer.add_string buf (Printf.sprintf ".%s:\n" b.Mir.mlabel);
      List.iter (fun i -> Buffer.add_string buf (Printf.sprintf "\t%s\n" (inst_str i))) b.Mir.insts)
    f.Mir.blocks;
  Buffer.contents buf
