(* The end of the pipeline: IR function -> allocated MIR, plus the
   measurements the evaluation needs (object size, simulated cycles). *)

open Ub_ir

type compiled = {
  mir : Mir.func;
  asm : string;
  obj_size : int; (* bytes *)
}

let compile_func (fn : Func.t) : compiled =
  let mir = Isel.lower_func fn in
  let mir = Regalloc.run mir ~nargs:(List.length fn.Func.args) in
  { mir; asm = Emit.func_str mir; obj_size = Emit.func_size mir }

let compile_module (m : Func.module_) : (string * compiled) list =
  List.map (fun (f : Func.t) -> (f.Func.name, compile_func f)) m.Func.funcs

(* Simulated running time: profile the IR (block execution counts), then
   price the compiled blocks.  [fn] must be the same function the MIR was
   compiled from. *)
let simulate_cycles (p : Target.profile) (c : compiled) ~(profile : (string * int) list) : float =
  Cost.simulate p c.mir profile
