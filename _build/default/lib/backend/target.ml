(* The target register file and machine profiles.

   Fourteen allocatable x86-64 GPRs (RSP and RBP are reserved).  The two
   machine profiles stand in for the paper's Machine 1 (Core i7-870,
   Nehalem) and Machine 2 (Core i5-6600, Skylake); they share the
   structure and differ in a handful of latencies — most notably the LEA
   penalty for r13-based addressing (Intel Optimization Reference Manual
   §3.5.1.3, the cause of the paper's "Stanford Queens" anomaly). *)

let reg_names =
  [| "rax"; "rcx"; "rdx"; "rsi"; "rdi"; "r8"; "r9"; "r10"; "r11"; "rbx"; "r12"; "r13"; "r14"; "r15" |]

let num_regs = Array.length reg_names

let name_of i = reg_names.(i)

(* indices of registers with special roles *)
let rax = 0
let rdx = 2
let r13 = 11

type profile = {
  prof_name : string;
  lat_alu : float; (* add/sub/logic *)
  lat_imul : float;
  lat_div : float;
  lat_load : float;
  lat_store : float;
  lat_lea : float;
  lea_slow_base_penalty : float; (* extra for base in {r13} *)
  lat_branch : float;
  lat_fused_cmp_branch : float; (* macro-fused cmp+jcc *)
  lat_cmov : float;
  lat_movsx : float;
  lat_call : float;
  lat_copy : float; (* register-to-register move *)
}

(* Machine 1: Nehalem-class. *)
let machine1 =
  { prof_name = "machine1 (i7-870)";
    lat_alu = 1.0;
    lat_imul = 3.0;
    lat_div = 22.0;
    lat_load = 4.0;
    lat_store = 1.0;
    lat_lea = 1.0;
    lea_slow_base_penalty = 2.0;
    lat_branch = 2.0;
    lat_fused_cmp_branch = 1.0;
    lat_cmov = 2.0;
    lat_movsx = 1.0;
    lat_call = 4.0;
    lat_copy = 1.0;
  }

(* Machine 2: Skylake-class — faster divider and multiplier, zero-latency
   reg-reg moves (rename), but a slightly larger relative LEA penalty. *)
let machine2 =
  { prof_name = "machine2 (i5-6600)";
    lat_alu = 1.0;
    lat_imul = 3.0;
    lat_div = 18.0;
    lat_load = 4.0;
    lat_store = 1.0;
    lat_lea = 1.0;
    lea_slow_base_penalty = 3.0;
    lat_branch = 1.5;
    lat_fused_cmp_branch = 1.0;
    lat_cmov = 1.0;
    lat_movsx = 1.0;
    lat_call = 3.0;
    lat_copy = 0.5;
  }

let profiles = [ machine1; machine2 ]
