lib/backend/target.ml: Array
