lib/backend/mir.ml: List Option Ub_ir
