lib/backend/emit.ml: Buffer Int64 List Mir Printf Target Ub_support Util
