lib/backend/compile.ml: Cost Emit Func Isel List Mir Regalloc Target Ub_ir
