lib/backend/regalloc.ml: Array Hashtbl List Mir Target
