lib/backend/cost.ml: List Mir Target Ub_support Util
