lib/backend/isel.ml: Array Bitvec Constant Func Instr Int64 List Mir Option Printf Types Ub_ir Ub_support
