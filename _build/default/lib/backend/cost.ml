(* The micro-architectural cost model.  Block cost = sum of instruction
   latencies, with cmp/test+jcc macro-fusion, and the Intel LEA base-
   register penalty (r13 needs a disp8 encoding path; Optimization
   Reference Manual §3.5.1.3) that produces the paper's Queens anomaly.

   Simulated running time of a compiled function =
     sum over blocks of (IR-profile execution count x block cost). *)

open Ub_support

let inst_cost (p : Target.profile) (prev : Mir.inst option) (i : Mir.inst) : float =
  match i with
  | Mir.Mov (_, _, _) -> p.Target.lat_alu
  | Mir.Bin (Mir.BImul, _, _, _) -> p.Target.lat_imul
  | Mir.Bin (_, _, _, _) -> p.Target.lat_alu
  | Mir.Neg _ | Mir.Not _ -> p.Target.lat_alu
  | Mir.Div _ -> p.Target.lat_div
  | Mir.Cmp _ | Mir.Test _ -> p.Target.lat_alu
  | Mir.Setcc _ -> p.Target.lat_alu
  | Mir.Cmov _ -> p.Target.lat_cmov
  | Mir.Movsx _ | Mir.Movzx _ -> p.Target.lat_movsx
  | Mir.Lea { addr; _ } ->
    let base_penalty =
      match addr.Mir.base with
      | Mir.Preg r when r = Target.r13 -> p.Target.lea_slow_base_penalty
      | _ -> 0.0
    in
    p.Target.lat_lea +. base_penalty
  | Mir.Load _ -> p.Target.lat_load
  | Mir.Store _ -> p.Target.lat_store
  | Mir.Copy _ -> p.Target.lat_copy
  | Mir.Undef_def _ -> 0.0 (* pinned undef: no instruction emitted *)
  | Mir.Call _ -> p.Target.lat_call
  | Mir.Push _ | Mir.Pop _ -> p.Target.lat_alu
  | Mir.Jmp _ -> 1.0
  | Mir.Jcc _ -> (
    (* macro-fusion with an adjacent compare *)
    match prev with
    | Some (Mir.Cmp _) | Some (Mir.Test _) -> p.Target.lat_fused_cmp_branch
    | _ -> p.Target.lat_branch)
  | Mir.Ret _ -> 1.0
  | Mir.Spill_store _ -> p.Target.lat_store
  | Mir.Spill_load _ -> p.Target.lat_load

let block_cost (p : Target.profile) (b : Mir.block) : float =
  let rec go prev acc = function
    | [] -> acc
    | i :: rest -> go (Some i) (acc +. inst_cost p prev i) rest
  in
  go None 0.0 b.Mir.insts

(* Simulated cycles for a run of the ORIGINAL function whose execution
   profile (block -> count) was measured at the IR level on the same
   function the MIR was selected from. *)
let simulate (p : Target.profile) (mf : Mir.func) (profile : (string * int) list) : float =
  List.fold_left
    (fun acc (b : Mir.block) ->
      let count =
        match List.assoc_opt b.Mir.mlabel profile with Some c -> float_of_int c | None -> 0.0
      in
      acc +. (count *. block_cost p b))
    0.0 mf.Mir.blocks

(* Static cost of a function, used by inlining-style heuristics and as a
   code-quality proxy in tests. *)
let static_cost (p : Target.profile) (mf : Mir.func) : float =
  Util.sum_float (List.map (block_cost p) mf.Mir.blocks)
