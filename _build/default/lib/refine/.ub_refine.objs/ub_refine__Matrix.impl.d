lib/refine/matrix.ml: Checker List Parser Ub_ir Ub_sem
