lib/refine/enum_check.ml: Bitvec Func Interp List Mode Oracle Printf String Types Ub_ir Ub_sem Ub_support Value
