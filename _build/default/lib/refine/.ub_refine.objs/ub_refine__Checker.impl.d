lib/refine/checker.ml: Array Bitvec Bvterm Circuit Encode Enum_check Func List Mode Printf String Ub_ir Ub_sem Ub_smt Ub_support Util Value
