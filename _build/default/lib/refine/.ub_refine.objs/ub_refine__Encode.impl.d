lib/refine/encode.ml: Array Bvterm Circuit Constant Func Hashtbl Instr List Mode Printf Types Ub_ir Ub_sem Ub_smt
