(* A miniature scalar evolution: recognizes affine induction variables
   {start, +, step} whose update is an add in the loop, and computes
   symbolic trip counts for the canonical `i <cmp> n` exit pattern.  Used
   by induction-variable widening (Figure 3) and by the loop passes'
   legality checks.

   Per Section 10.1, scalar evolution "currently fails to analyze
   expressions involving freeze"; we model that faithfully: a [freeze]
   feeding the IV update or the bound makes [classify] return None unless
   [freeze_aware] is set. *)

open Ub_ir

type iv = {
  var : Instr.var; (* the phi *)
  ty : Types.t;
  start : Instr.operand;
  step : Instr.operand;
  step_insn : Instr.var; (* the add producing the next value *)
  nsw : bool;
  nuw : bool;
}

let rec operand_mentions_freeze (fn : Func.t) (op : Instr.operand) ~depth =
  depth > 0
  &&
  match op with
  | Instr.Const _ -> false
  | Instr.Var v -> (
    match Func.find_def fn v with
    | Some { Instr.ins = Instr.Freeze _; _ } -> true
    | Some { Instr.ins; _ } ->
      List.exists
        (fun o -> operand_mentions_freeze fn o ~depth:(depth - 1))
        (Instr.operands ins)
    | None -> false)

(* Find the affine induction variables of a loop: phis in the header of
   the form  phi [start, preheader], [next, latch]  with
   next = add [nsw] phi, step  and step loop-invariant. *)
let classify ?(freeze_aware = false) (fn : Func.t) (lp : Loops.loop) : iv list =
  match Func.find_block fn lp.header with
  | None -> []
  | Some header ->
    List.filter_map
      (fun { Instr.def; ins } ->
        match (def, ins) with
        | Some phi_var, Instr.Phi (ty, incoming) when Types.is_integer ty -> (
          let from_latch, from_outside =
            List.partition (fun (_, l) -> List.mem l lp.latches) incoming
          in
          match (from_latch, from_outside) with
          | [ (Instr.Var next, _) ], [ (start, _) ] -> (
            match Func.find_def fn next with
            | Some { Instr.ins = Instr.Binop (Instr.Add, attrs, _, Instr.Var pv, step); _ }
              when pv = phi_var && Loops.operand_invariant fn lp step ->
              if
                (not freeze_aware)
                && (operand_mentions_freeze fn step ~depth:4
                   || operand_mentions_freeze fn start ~depth:4)
              then None
              else
                Some
                  { var = phi_var;
                    ty;
                    start;
                    step;
                    step_insn = next;
                    nsw = attrs.Instr.nsw;
                    nuw = attrs.Instr.nuw;
                  }
            | _ -> None)
          | _ -> None)
        | _ -> None)
      header.insns

(* The canonical rotated-loop exit: header's terminator (or the latch's)
   is `br (icmp pred iv bound), body, exit`.  Returns (iv, pred, bound)
   when matched. *)
let exit_condition (fn : Func.t) (lp : Loops.loop) (ivs : iv list) :
    (iv * Instr.icmp_pred * Instr.operand) option =
  match Func.find_block fn lp.header with
  | None -> None
  | Some header -> (
    match header.term with
    | Instr.Cond_br (Instr.Var c, _, _) -> (
      match Func.find_def fn c with
      | Some { Instr.ins = Instr.Icmp (pred, _, Instr.Var a, bound); _ }
        when Loops.operand_invariant fn lp bound -> (
        match List.find_opt (fun iv -> iv.var = a) ivs with
        | Some iv -> Some (iv, pred, bound)
        | None -> None)
      | _ -> None)
    | _ -> None)
