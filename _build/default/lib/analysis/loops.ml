(* Natural-loop detection from back edges in the dominator tree, with the
   bits loop passes need: header, body, preheader, exiting edges, and
   loop-invariance queries. *)

open Ub_ir

type loop = {
  header : Instr.label;
  latches : Instr.label list; (* sources of back edges *)
  blocks : Instr.label list; (* body, including header *)
  preheader : Instr.label option; (* unique non-loop predecessor of header ending in Br *)
  exits : (Instr.label * Instr.label) list; (* (inside, outside) edges *)
}

type t = { loops : loop list; dom : Dom.t }

let compute (fn : Func.t) : t =
  let cfg = Cfg.build fn in
  let dom = Dom.compute cfg in
  (* back edge: l -> h where h dominates l *)
  let back_edges =
    List.concat_map
      (fun l ->
        List.filter_map
          (fun s -> if Dom.dominates dom s l then Some (l, s) else None)
          (Cfg.successors cfg l))
      cfg.rpo
  in
  (* group back edges by header *)
  let headers = List.sort_uniq compare (List.map snd back_edges) in
  let loops =
    List.map
      (fun h ->
        let latches = List.filter_map (fun (l, h') -> if h' = h then Some l else None) back_edges in
        (* natural loop body: h plus all blocks reaching a latch without
           passing through h *)
        let body = Hashtbl.create 8 in
        Hashtbl.replace body h ();
        let rec add l =
          if not (Hashtbl.mem body l) then begin
            Hashtbl.replace body l ();
            List.iter add (Cfg.predecessors cfg l)
          end
        in
        List.iter add latches;
        let blocks = List.filter (Hashtbl.mem body) cfg.rpo in
        let outside_preds =
          List.filter (fun p -> not (Hashtbl.mem body p)) (Cfg.predecessors cfg h)
        in
        let preheader =
          match outside_preds with
          | [ p ] -> (
            match Func.find_block fn p with
            | Some b -> ( match b.term with Instr.Br _ -> Some p | _ -> None)
            | None -> None)
          | _ -> None
        in
        let exits =
          List.concat_map
            (fun l ->
              List.filter_map
                (fun s -> if Hashtbl.mem body s then None else Some (l, s))
                (Cfg.successors cfg l))
            blocks
        in
        { header = h; latches; blocks; preheader; exits })
      headers
  in
  { loops; dom }

let loop_of t label = List.find_opt (fun lp -> List.mem label lp.blocks) t.loops

(* Is operand [op] invariant in [lp] — defined outside the loop (or a
   constant / argument)? *)
let operand_invariant (fn : Func.t) (lp : loop) (op : Instr.operand) =
  match op with
  | Instr.Const _ -> true
  | Instr.Var v -> (
    if List.mem_assoc v fn.args then true
    else
      match Func.defining_block fn v with
      | Some b -> not (List.mem b.label lp.blocks)
      | None -> true)

let insn_invariant (fn : Func.t) (lp : loop) (ins : Instr.t) =
  List.for_all (operand_invariant fn lp) (Instr.operands ins)
