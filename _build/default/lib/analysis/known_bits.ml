(* Known-bits and power-of-two analyses, in the spirit of LLVM's
   ValueTracking.

   IMPORTANT (Section 5.6 of the paper): results hold *up to poison* — a
   fact like "is a power of two" means "for executions in which the
   analyzed value and the values it depends on are not poison".  The API
   makes this explicit: every query returns an [up_to_poison] fact, and
   clients that move code past control flow must separately establish
   non-poison (e.g. via freeze) before relying on it.  The unsound LICM
   variant in lib/opt ignores this — exactly the bug the paper warns
   about — and the checker catches it. *)

open Ub_support
open Ub_ir

type fact = {
  known_zero : Bitvec.t; (* bits guaranteed 0 (when non-poison) *)
  known_one : Bitvec.t; (* bits guaranteed 1 (when non-poison) *)
  up_to_poison : bool; (* always true here; see note above *)
}

let top ~width =
  { known_zero = Bitvec.zero width; known_one = Bitvec.zero width; up_to_poison = true }

let of_const bv =
  { known_zero = Bitvec.lognot bv; known_one = bv; up_to_poison = true }

let width_of_fact f = Bitvec.width f.known_zero

(* Analysis over a function: a fixpoint is unnecessary for our loop-free
   uses; we do a single pass in block layout order and give [top] to
   anything not yet seen (phis, loop-carried values). *)
type env = (Instr.var, fact) Hashtbl.t

let lookup env ~width (op : Instr.operand) : fact =
  match op with
  | Instr.Const (Constant.Int bv) -> of_const bv
  | Instr.Const _ -> top ~width
  | Instr.Var v -> ( match Hashtbl.find_opt env v with Some f -> f | None -> top ~width)

let transfer env (ins : Instr.t) : fact option =
  match ins with
  | Instr.Binop (op, _, ty, a, b) when Types.is_integer ty -> (
    let w = Types.bitwidth ty in
    let fa = lookup env ~width:w a and fb = lookup env ~width:w b in
    match op with
    | Instr.And ->
      Some
        { known_zero = Bitvec.logor fa.known_zero fb.known_zero;
          known_one = Bitvec.logand fa.known_one fb.known_one;
          up_to_poison = true;
        }
    | Instr.Or ->
      Some
        { known_zero = Bitvec.logand fa.known_zero fb.known_zero;
          known_one = Bitvec.logor fa.known_one fb.known_one;
          up_to_poison = true;
        }
    | Instr.Xor ->
      Some
        { known_zero =
            Bitvec.logor
              (Bitvec.logand fa.known_zero fb.known_zero)
              (Bitvec.logand fa.known_one fb.known_one);
          known_one =
            Bitvec.logor
              (Bitvec.logand fa.known_zero fb.known_one)
              (Bitvec.logand fa.known_one fb.known_zero);
          up_to_poison = true;
        }
    | Instr.Shl -> (
      match b with
      | Instr.Const (Constant.Int n) when Bitvec.shift_in_range fa.known_zero n ->
        let sh = Bitvec.to_uint_exn n in
        let kz = Bitvec.shl fa.known_zero sh in
        (* low bits become known zero *)
        let low_mask =
          if sh = 0 then Bitvec.zero w
          else Bitvec.lognot (Bitvec.shl (Bitvec.all_ones w) sh)
        in
        Some
          { known_zero = Bitvec.logor kz low_mask;
            known_one = Bitvec.shl fa.known_one sh;
            up_to_poison = true;
          }
      | _ -> Some (top ~width:w))
    | Instr.LShr -> (
      match b with
      | Instr.Const (Constant.Int n) when Bitvec.shift_in_range fa.known_zero n ->
        let sh = Bitvec.to_uint_exn n in
        let high_mask =
          if sh = 0 then Bitvec.zero w
          else Bitvec.lognot (Bitvec.lshr (Bitvec.all_ones w) sh)
        in
        Some
          { known_zero = Bitvec.logor (Bitvec.lshr fa.known_zero sh) high_mask;
            known_one = Bitvec.lshr fa.known_one sh;
            up_to_poison = true;
          }
      | _ -> Some (top ~width:w))
    | Instr.UDiv | Instr.SDiv | Instr.URem | Instr.SRem | Instr.AShr | Instr.Add | Instr.Sub
    | Instr.Mul ->
      Some (top ~width:w))
  | Instr.Conv (Instr.Zext, from, x, to_) ->
    let fw = Types.bitwidth from and tw = Types.bitwidth to_ in
    let fx = lookup env ~width:fw x in
    let ext_zero = Bitvec.logand (Bitvec.lognot (Bitvec.zext (Bitvec.all_ones fw) ~width:tw)) (Bitvec.all_ones tw) in
    Some
      { known_zero = Bitvec.logor (Bitvec.zext fx.known_zero ~width:tw) ext_zero;
        known_one = Bitvec.zext fx.known_one ~width:tw;
        up_to_poison = true;
      }
  | Instr.Conv (Instr.Trunc, from, x, to_) ->
    let fw = Types.bitwidth from and tw = Types.bitwidth to_ in
    let fx = lookup env ~width:fw x in
    Some
      { known_zero = Bitvec.trunc fx.known_zero ~width:tw;
        known_one = Bitvec.trunc fx.known_one ~width:tw;
        up_to_poison = true;
      }
  | Instr.Freeze (ty, x) when Types.is_integer ty ->
    (* freeze preserves known bits: if the input is non-poison they hold;
       if it is poison the frozen value is arbitrary, but then the input
       fact was vacuous anyway... EXCEPT that freeze's output is *not*
       up-to-poison-vacuous: this is precisely the Section 5.6 subtlety.
       We conservatively return top unless the input is a constant. *)
    (match x with
    | Instr.Const (Constant.Int bv) -> Some (of_const bv)
    | _ -> Some (top ~width:(Types.bitwidth ty)))
  | ins -> (
    match Instr.result_ty ins with
    | Some ty when Types.is_integer ty -> Some (top ~width:(Types.bitwidth ty))
    | _ -> None)

let analyze (fn : Func.t) : env =
  let env = Hashtbl.create 32 in
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun { Instr.def; ins } ->
          match (def, transfer env ins) with
          | Some d, Some f -> Hashtbl.replace env d f
          | _ -> ())
        b.insns)
    fn.blocks;
  env

(* isKnownToBeAPowerOfTwo, the Section 5.6 example.  True when the value
   is 1 << something or a constant power of two — *up to poison*. *)
let is_known_power_of_two (fn : Func.t) (op : Instr.operand) : bool =
  match op with
  | Instr.Const (Constant.Int bv) -> Bitvec.is_power_of_two bv
  | Instr.Const _ -> false
  | Instr.Var v -> (
    match Func.find_def fn v with
    | Some { Instr.ins = Instr.Binop (Instr.Shl, _, _, Instr.Const (Constant.Int one), _); _ }
      when Bitvec.is_one one ->
      true
    | Some { Instr.ins = Instr.Binop (Instr.Shl, attrs, _, base, _); _ } -> (
      ignore attrs;
      match base with
      | Instr.Const (Constant.Int bv) -> Bitvec.is_power_of_two bv
      | _ -> false)
    | _ -> false)

(* Known non-zero (up to poison): needed by the division-hoisting
   discussion of Sections 3.2 and 5.6. *)
let is_known_nonzero (fn : Func.t) (op : Instr.operand) : bool =
  match op with
  | Instr.Const (Constant.Int bv) -> not (Bitvec.is_zero bv)
  | _ -> is_known_power_of_two fn op

(* Guaranteed not to be poison or undef, a syntactic underapproximation
   of LLVM's isGuaranteedNotToBeUndefOrPoison: non-undef/poison
   constants, freeze results, and arguments are NOT guaranteed (they may
   be poison at call sites). *)
let rec not_undef_or_poison (fn : Func.t) (op : Instr.operand) : bool =
  match op with
  | Instr.Const (Constant.Int _) | Instr.Const (Constant.Null _) -> true
  | Instr.Const _ -> false
  | Instr.Var v -> (
    match Func.find_def fn v with
    | Some { Instr.ins = Instr.Freeze _; _ } -> true
    | Some { Instr.ins = Instr.Binop (op', attrs, _, a, b); _ } ->
      attrs = Instr.no_attrs
      && not (Instr.is_div op')
      && (op' <> Instr.Shl && op' <> Instr.LShr && op' <> Instr.AShr)
      && not_undef_or_poison fn a && not_undef_or_poison fn b
    | _ -> false)

let is_div = Instr.is_div
