lib/analysis/scev.ml: Func Instr List Loops Types Ub_ir
