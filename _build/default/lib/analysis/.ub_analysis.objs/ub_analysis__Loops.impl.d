lib/analysis/loops.ml: Cfg Dom Func Hashtbl Instr List Ub_ir
