lib/analysis/known_bits.ml: Bitvec Constant Func Hashtbl Instr List Types Ub_ir Ub_support
