lib/analysis/dom.ml: Cfg Func Hashtbl Instr List Ub_ir
