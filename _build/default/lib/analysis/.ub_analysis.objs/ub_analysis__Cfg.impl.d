lib/analysis/cfg.ml: Func Hashtbl Instr List Ub_ir
