(* Dominator tree via the Cooper–Harvey–Kennedy "engineered" iterative
   algorithm, plus dominance queries and dominance frontiers. *)

open Ub_ir

type t = {
  cfg : Cfg.t;
  idom : (Instr.label, Instr.label) Hashtbl.t; (* entry maps to itself *)
}

let compute (cfg : Cfg.t) : t =
  let entry = List.hd cfg.rpo in
  let idom = Hashtbl.create 16 in
  Hashtbl.replace idom entry entry;
  let index l = Hashtbl.find cfg.index l in
  let rec intersect a b =
    if a = b then a
    else begin
      let ia = index a and ib = index b in
      if ia > ib then intersect (Hashtbl.find idom a) b
      else intersect a (Hashtbl.find idom b)
    end
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> entry then begin
          let preds =
            List.filter (fun p -> Hashtbl.mem idom p || p = entry) (Cfg.predecessors cfg l)
          in
          let preds = List.filter (fun p -> Cfg.is_reachable cfg p) preds in
          match List.filter (Hashtbl.mem idom) preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if Hashtbl.find_opt idom l <> Some new_idom then begin
              Hashtbl.replace idom l new_idom;
              changed := true
            end
        end)
      cfg.rpo
  done;
  { cfg; idom }

let of_func fn = compute (Cfg.build fn)

let idom t l =
  match Hashtbl.find_opt t.idom l with
  | Some p when p <> l -> Some p
  | _ -> None

(* Does [a] dominate [b]?  (Reflexive.) *)
let dominates t a b =
  let rec go x =
    if x = a then true
    else
      match idom t x with
      | Some p -> go p
      | None -> false
  in
  Cfg.is_reachable t.cfg a && Cfg.is_reachable t.cfg b && go b

let strictly_dominates t a b = a <> b && dominates t a b

(* Children in the dominator tree. *)
let children t l =
  List.filter (fun c -> c <> l && Hashtbl.find_opt t.idom c = Some l) t.cfg.rpo

(* Dominance frontier (Cooper-Harvey-Kennedy's simple computation). *)
let frontiers t : (Instr.label, Instr.label list) Hashtbl.t =
  let df = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace df l []) t.cfg.rpo;
  List.iter
    (fun b ->
      let preds = List.filter (Cfg.is_reachable t.cfg) (Cfg.predecessors t.cfg b) in
      if List.length preds >= 2 then
        List.iter
          (fun p ->
            let rec walk runner =
              match Hashtbl.find_opt t.idom b with
              | Some dom_b when runner <> dom_b ->
                let cur = Hashtbl.find df runner in
                if not (List.mem b cur) then Hashtbl.replace df runner (b :: cur);
                (match Hashtbl.find_opt t.idom runner with
                | Some next when next <> runner -> walk next
                | _ -> ())
              | _ -> ()
            in
            walk p)
          preds)
    t.cfg.rpo;
  df

(* Definition-dominates-use query for instruction scheduling decisions:
   does the definition point of [v] dominate the start of block [l]? *)
let def_dominates_block t (fn : Func.t) v l =
  if List.mem_assoc v fn.args then true
  else
    match Func.defining_block fn v with
    | Some db -> strictly_dominates t db.label l || db.label = l
    | None -> false
