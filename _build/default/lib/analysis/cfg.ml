(* Control-flow-graph utilities: successor/predecessor maps, reverse
   postorder, and reachability. *)

open Ub_ir

type t = {
  fn : Func.t;
  succs : (Instr.label, Instr.label list) Hashtbl.t;
  preds : (Instr.label, Instr.label list) Hashtbl.t;
  rpo : Instr.label list; (* reverse postorder over reachable blocks *)
  index : (Instr.label, int) Hashtbl.t; (* rpo index *)
}

let build (fn : Func.t) : t =
  let succs = Hashtbl.create 16 in
  let preds = Hashtbl.create 16 in
  List.iter
    (fun (b : Func.block) ->
      Hashtbl.replace succs b.label (Instr.successors b.term);
      if not (Hashtbl.mem preds b.label) then Hashtbl.replace preds b.label [])
    fn.blocks;
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun s ->
          let cur = match Hashtbl.find_opt preds s with Some l -> l | None -> [] in
          Hashtbl.replace preds s (cur @ [ b.label ]))
        (Instr.successors b.term))
    fn.blocks;
  (* postorder DFS from entry *)
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.replace visited l ();
      List.iter dfs (match Hashtbl.find_opt succs l with Some s -> s | None -> []);
      post := l :: !post
    end
  in
  dfs (Func.entry fn).label;
  let rpo = !post in
  let index = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace index l i) rpo;
  { fn; succs; preds; rpo; index }

let successors t l = match Hashtbl.find_opt t.succs l with Some s -> s | None -> []
let predecessors t l = match Hashtbl.find_opt t.preds l with Some p -> p | None -> []
let is_reachable t l = Hashtbl.mem t.index l
let reachable_blocks t = t.rpo

(* Does the CFG contain a cycle (over reachable blocks)? *)
let has_cycle t =
  List.exists
    (fun l ->
      List.exists
        (fun s ->
          match (Hashtbl.find_opt t.index l, Hashtbl.find_opt t.index s) with
          | Some il, Some is_ -> is_ <= il
          | _ -> false)
        (successors t l))
    t.rpo
  && begin
    (* rpo-index back edge is necessary but not sufficient for a cycle in
       irreducible graphs; do a real check via DFS colors *)
    let color = Hashtbl.create 16 in
    let rec visit l =
      match Hashtbl.find_opt color l with
      | Some `Black -> false
      | Some `Gray -> true
      | None ->
        Hashtbl.replace color l `Gray;
        let r = List.exists visit (successors t l) in
        Hashtbl.replace color l `Black;
        r
    in
    visit (List.hd t.rpo)
  end
