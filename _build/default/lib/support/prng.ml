(* SplitMix64: a small, fast, deterministic PRNG.  Every randomized piece
   of this repository (corpus generation, random oracles, property tests'
   auxiliary data) goes through this module so that runs are reproducible
   from a single seed. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0, bound), bound > 0. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bool t = Int64.equal (Int64.logand (next_int64 t) 1L) 1L

let bitvec t ~width = Bitvec.make ~width (next_int64 t)

(* Pick an element of a non-empty list / array. *)
let choose_list t xs =
  match xs with
  | [] -> invalid_arg "Prng.choose_list: empty"
  | _ -> List.nth xs (int t (List.length xs))

let choose_array t xs =
  if Array.length xs = 0 then invalid_arg "Prng.choose_array: empty";
  xs.(int t (Array.length xs))

(* Bernoulli with probability num/den. *)
let chance t ~num ~den = int t den < num

let shuffle t xs =
  let a = Array.copy xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a
