lib/support/bitvec.ml: Array Fmt Int64 List Printf String
