lib/support/prng.ml: Array Bitvec Int64 List
