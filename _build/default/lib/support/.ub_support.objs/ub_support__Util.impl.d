lib/support/util.ml: Fmt List String Unix
