(* Union-find with path compression and union by rank, over dense integer
   keys.  Used by GVN's congruence classes and by the register allocator's
   copy coalescing. *)

type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let r = find t p in
    t.parent.(i) <- r;
    r
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else if t.rank.(ra) < t.rank.(rb) then begin
    t.parent.(ra) <- rb;
    rb
  end
  else if t.rank.(ra) > t.rank.(rb) then begin
    t.parent.(rb) <- ra;
    ra
  end
  else begin
    t.parent.(rb) <- ra;
    t.rank.(ra) <- t.rank.(ra) + 1;
    ra
  end

let same t a b = find t a = find t b
