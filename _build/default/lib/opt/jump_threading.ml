(* Jump threading (simplified): forwards branches through empty blocks
   and folds branches whose condition is (or trivially computes to) a
   constant.

   The freeze wrinkle (Section 7.2, "Shootout nestedloop"): the legacy
   pass does not know the freeze instruction, so a branch on a frozen
   value is not threaded, which perturbs the rest of the pipeline — the
   paper measured a 19% compile-time increase on one benchmark from
   exactly this.  [jt_handles_freeze] restores threading through
   freeze(constant). *)

open Ub_support
open Ub_ir
open Instr

(* look through freeze when permitted *)
let rec known_bool (cfg : Pass.config) (fn : Func.t) (op : operand) ~depth : bool option =
  if depth <= 0 then None
  else
    match op with
    | Const (Constant.Int bv) -> Some (Bitvec.is_one bv)
    | Const _ -> None
    | Var v -> (
      match Func.find_def fn v with
      | Some { Instr.ins = Freeze (_, x); _ } when cfg.Pass.jt_handles_freeze ->
        known_bool cfg fn x ~depth:(depth - 1)
      | _ -> None)

let thread_forwarders (fn : Func.t) : Func.t =
  (* an empty block ending in `br target` can be skipped by its
     predecessors, provided the target's phis don't distinguish (we
     require the target to have no phis) *)
  let entry_label = (Func.entry fn).label in
  let forward : (Instr.label, Instr.label) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (b : Func.block) ->
      match (b.insns, b.term) with
      | [], Br t when t <> b.label && b.label <> entry_label ->
        let target = Func.find_block_exn fn t in
        let target_has_phis =
          List.exists (fun n -> match n.Instr.ins with Phi _ -> true | _ -> false) target.insns
        in
        if not target_has_phis then Hashtbl.replace forward b.label t
      | _ -> ())
    fn.blocks;
  (* resolve chains, avoiding cycles *)
  let rec resolve l seen =
    match Hashtbl.find_opt forward l with
    | Some t when not (List.mem t seen) -> resolve t (l :: seen)
    | _ -> l
  in
  { fn with
    Func.blocks =
      List.map
        (fun (b : Func.block) ->
          { b with term = Instr.map_term_labels (fun l -> resolve l []) b.term })
        fn.blocks;
  }

let fold_known_branches (cfg : Pass.config) (fn : Func.t) : Func.t =
  { fn with
    Func.blocks =
      List.map
        (fun (b : Func.block) ->
          match b.term with
          | Cond_br (c, t, e) -> (
            match known_bool cfg fn c ~depth:4 with
            | Some true -> { b with term = Br t }
            | Some false -> { b with term = Br e }
            | None -> b)
        | _ -> b)
        fn.blocks;
  }

let run (cfg : Pass.config) (fn : Func.t) : Func.t =
  let fn = fold_known_branches cfg fn in
  let fn = thread_forwarders fn in
  let fn = Dce.remove_unreachable_blocks fn in
  Simplifycfg.prune_phis fn

let pass : Pass.t = { Pass.name = "jump-threading"; run }
