lib/opt/dce.ml: Func Hashtbl Instr List Pass Ub_analysis Ub_ir
