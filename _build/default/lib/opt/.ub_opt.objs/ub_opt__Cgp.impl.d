lib/opt/cgp.ml: Constant Func Instcombine Instr List Pass Types Ub_ir
