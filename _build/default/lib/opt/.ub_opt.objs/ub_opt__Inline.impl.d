lib/opt/inline.ml: Func Hashtbl Instr List Option Pass Types Ub_ir
