lib/opt/pipeline.ml: Cgp Constant_fold Dce Gvn Indvar_widen Inline Instcombine Jump_threading Licm Load_widen Loop_unswitch Pass Reassociate Sccp Simplifycfg Ub_ir
