lib/opt/indvar_widen.ml: Func Instr List Pass Types Ub_analysis Ub_ir
