lib/opt/constant_fold.ml: Bitvec Constant Func Instr Pass Types Ub_ir Ub_support
