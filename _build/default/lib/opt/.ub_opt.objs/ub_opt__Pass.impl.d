lib/opt/pass.ml: Func Instr List Logs Printer Printf String Ub_ir Validate
