lib/opt/reassociate.ml: Bitvec Constant Func Instr Pass Ub_ir Ub_support
