lib/opt/gvn.ml: Constant Func Hashtbl Instr List Pass Printf String Types Ub_analysis Ub_ir
