lib/opt/jump_threading.ml: Bitvec Constant Dce Func Hashtbl Instr List Pass Simplifycfg Ub_ir Ub_support
