lib/opt/load_widen.ml: Constant Func Instr Pass Types Ub_ir Ub_support
