lib/opt/simplifycfg.ml: Bitvec Constant Dce Func Instr List Pass Ub_ir Ub_support
