lib/opt/licm.ml: Bitvec Constant Func Instr List Pass Ub_analysis Ub_ir Ub_support
