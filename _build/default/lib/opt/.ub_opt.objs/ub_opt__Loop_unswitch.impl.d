lib/opt/loop_unswitch.ml: Dce Func Instr List Option Pass Types Ub_analysis Ub_ir
