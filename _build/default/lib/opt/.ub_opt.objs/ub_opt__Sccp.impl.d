lib/opt/sccp.ml: Bitvec Constant Constant_fold Func Hashtbl Instr List Pass Simplifycfg Types Ub_ir Ub_support
