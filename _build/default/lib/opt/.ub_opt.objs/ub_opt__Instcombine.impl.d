lib/opt/instcombine.ml: Bitvec Constant Func Instr Option Pass Types Ub_analysis Ub_ir Ub_support
