(* Induction-variable widening (Section 2.4 / Figure 3).

   Pattern: an i32 induction variable stepped by `add nsw`, whose value
   feeds `sext ... to i64` inside the loop.  We add a parallel i64
   induction variable, replace the sext with it, and let DCE clean up.
   This removes one sign-extension per iteration (the paper: up to 39%
   on some microarchitectures; our cost model reproduces the shape).

   Soundness requires nsw=poison semantics: on overflow both the narrow
   IV and the widened one are poison, so behaviours coincide.  If nsw
   overflow merely produced *undef*, sext(undef) still has its top bits
   equal, so the 64-bit trip could differ from the 32-bit one — the
   soundness-matrix experiment demonstrates this with a mode whose nsw
   returns undef. *)

open Ub_ir
open Instr
module A = Ub_analysis

let run (_cfg : Pass.config) (fn : Func.t) : Func.t =
  let loops = A.Loops.compute fn in
  List.fold_left
    (fun fn (lp : A.Loops.loop) ->
      match lp.A.Loops.preheader with
      | None -> fn
      | Some ph -> (
        let ivs = A.Scev.classify fn lp in
        (* a widenable IV: nsw add; find a sext of it in the loop *)
        let widenable =
          List.find_map
            (fun (iv : A.Scev.iv) ->
              if not iv.A.Scev.nsw then None
              else
                let sexts =
                  List.concat_map
                    (fun (b : Func.block) ->
                      if not (List.mem b.Func.label lp.A.Loops.blocks) then []
                      else
                        List.filter_map
                          (fun n ->
                            match (n.Instr.def, n.Instr.ins) with
                            | Some d, Conv (Sext, from, Var v, to_)
                              when v = iv.A.Scev.var && Types.equal from iv.A.Scev.ty ->
                              Some (d, to_)
                            | _ -> None)
                          b.Func.insns)
                    fn.blocks
                in
                match sexts with [] -> None | (d, to_) :: _ -> Some (iv, d, to_))
            ivs
        in
        match widenable with
        | None -> fn
        | Some (iv, sext_var, wide_ty) ->
          let narrow_ty = iv.A.Scev.ty in
          let wv = Func.fresh_var fn "iv.wide" in
          let wnext = Func.fresh_var fn "iv.wide.next" in
          let wstart = Func.fresh_var fn "iv.wide.start" in
          let wstep = Func.fresh_var fn "iv.wide.step" in
          (* preheader: sext the start and step *)
          let pre_insns =
            [ { Instr.def = Some wstart; ins = Conv (Sext, narrow_ty, iv.A.Scev.start, wide_ty) };
              { Instr.def = Some wstep; ins = Conv (Sext, narrow_ty, iv.A.Scev.step, wide_ty) };
            ]
          in
          let fn' =
            { fn with
              Func.blocks =
                List.map
                  (fun (b : Func.block) ->
                    if b.Func.label = ph then
                      { b with Func.insns = b.Func.insns @ pre_insns }
                    else if b.Func.label = lp.A.Loops.header then begin
                      (* insert wide phi after existing phis; wide step
                         right after the narrow step if it is here, else
                         at the end before the terminator *)
                      let phis, rest =
                        List.partition
                          (fun n -> match n.Instr.ins with Phi _ -> true | _ -> false)
                          b.Func.insns
                      in
                      let wide_phi =
                        { Instr.def = Some wv;
                          ins =
                            Phi
                              ( wide_ty,
                                List.map
                                  (fun l ->
                                    if List.mem l lp.A.Loops.latches then (Var wnext, l)
                                    else (Var wstart, l))
                                  (Func.preds_of fn lp.A.Loops.header) );
                        }
                      in
                      { b with Func.insns = phis @ [ wide_phi ] @ rest }
                    end
                    else b)
                  fn.blocks;
            }
          in
          (* place the wide step increment right after the narrow one *)
          let fn' =
            Func.map_insns fn' (fun n ->
                if n.Instr.def = Some iv.A.Scev.step_insn then
                  [ n;
                    { Instr.def = Some wnext;
                      ins = Binop (Add, nsw_only, wide_ty, Var wv, Var wstep);
                    };
                  ]
                else [ n ])
          in
          (* the sext inside the loop becomes the wide IV *)
          let fn' = Func.replace_uses fn' ~v:sext_var ~by:(Var wv) in
          let fn' =
            Func.map_insns fn' (fun n -> if n.Instr.def = Some sext_var then [] else [ n ])
          in
          (* widen the canonical exit comparison too, so the narrow IV can
             die: icmp pred i32 %iv, %bound  =>  icmp pred i64 %wide,
             sext(%bound), with the extended bound in the preheader
             (Figure 3's "at the expense of adding a sign extend of n to
             the entry block") *)
          let fn' =
            match A.Scev.exit_condition fn' lp (A.Scev.classify fn' lp) with
            | Some (iv', pred, bound) when iv'.A.Scev.var = iv.A.Scev.var ->
              let wbound = Func.fresh_var fn' "iv.wide.bound" in
              let header = Func.find_block_exn fn' lp.A.Loops.header in
              (match header.Func.term with
              | Instr.Cond_br (Var cvar, _, _) ->
                let fn' =
                  { fn' with
                    Func.blocks =
                      List.map
                        (fun (b : Func.block) ->
                          if b.Func.label = ph then
                            { b with
                              Func.insns =
                                b.Func.insns
                                @ [ { Instr.def = Some wbound;
                                      ins = Conv (Sext, narrow_ty, bound, wide_ty);
                                    }
                                  ];
                            }
                          else b)
                        fn'.Func.blocks;
                  }
                in
                Func.map_insns fn' (fun n ->
                    if n.Instr.def = Some cvar then
                      [ { n with Instr.ins = Icmp (pred, wide_ty, Var wv, Var wbound) } ]
                    else [ n ])
              | _ -> fn')
            | _ -> fn'
          in
          fn'))
    fn loops.A.Loops.loops

let pass : Pass.t = { Pass.name = "indvar-widen"; run }
