(* SimplifyCFG: constant-branch folding, straight-line block merging,
   removal of trivial forwarding blocks, and the phi->select conversion
   of Section 3.4 (sound under the proposed semantics because select with
   a non-poison condition forwards only the chosen arm, and the branch it
   replaces would have been UB on a poison condition anyway — replacing
   UB is a legal refinement). *)

open Ub_support
open Ub_ir
open Instr

(* br (true/false) -> br; also br c, same, same -> br same *)
let fold_constant_branches (fn : Func.t) : Func.t =
  { fn with
    blocks =
      List.map
        (fun (b : Func.block) ->
          match b.term with
          | Cond_br (Const (Constant.Int bv), t, e) ->
            { b with term = Br (if Bitvec.is_one bv then t else e) }
          | Cond_br (_, t, e) when t = e -> { b with term = Br t }
          | _ -> b)
        fn.blocks;
  }

(* Remove phi incomings for edges that no longer exist. *)
let prune_phis (fn : Func.t) : Func.t =
  let preds = Func.predecessors fn in
  let fn =
    { fn with
      Func.blocks =
        List.map
          (fun (b : Func.block) ->
            let my_preds = match List.assoc_opt b.label preds with Some p -> p | None -> [] in
            { b with
              insns =
                List.map
                  (fun n ->
                    match n.Instr.ins with
                    | Phi (ty, inc) ->
                      { n with
                        Instr.ins = Phi (ty, List.filter (fun (_, l) -> List.mem l my_preds) inc);
                      }
                    | _ -> n)
                  b.insns;
            })
          fn.blocks;
    }
  in
  (* single-incoming phis in single-pred blocks become copies *)
  let substs = ref [] in
  let fn =
    Func.map_insns fn (fun n ->
        match (n.Instr.def, n.Instr.ins) with
        | Some d, Phi (_, [ (v, _) ]) ->
          substs := (d, v) :: !substs;
          []
        | _ -> [ n ])
  in
  List.fold_left (fun acc (v, by) -> Func.replace_uses acc ~v ~by) fn !substs

(* Merge [b2] into [b1] when b1 ends `br b2` and b2's only predecessor is
   b1 (and b2 has no phis left). *)
let merge_blocks (fn : Func.t) : Func.t =
  let rec go fn =
    let preds = Func.predecessors fn in
    let candidate =
      List.find_opt
        (fun (b1 : Func.block) ->
          match b1.term with
          | Br l2 when l2 <> b1.label -> (
            match List.assoc_opt l2 preds with
            | Some [ _ ] ->
              let b2 = Func.find_block_exn fn l2 in
              (not (List.exists (fun n -> match n.Instr.ins with Phi _ -> true | _ -> false) b2.insns))
              && l2 <> (Func.entry fn).label
            | _ -> false)
          | _ -> false)
        fn.blocks
    in
    match candidate with
    | None -> fn
    | Some b1 ->
      let l2 = match b1.term with Br l -> l | _ -> assert false in
      let b2 = Func.find_block_exn fn l2 in
      let merged = { b1 with insns = b1.insns @ b2.insns; term = b2.term } in
      let blocks =
        List.filter_map
          (fun (b : Func.block) ->
            if b.label = b1.label then Some merged
            else if b.label = l2 then None
            else Some b)
          fn.blocks
      in
      (* phis downstream referring to l2 now come from b1 *)
      let blocks =
        List.map
          (fun (b : Func.block) ->
            { b with
              insns =
                List.map
                  (fun n ->
                    match n.Instr.ins with
                    | Phi (ty, inc) ->
                      { n with
                        Instr.ins =
                          Phi (ty, List.map (fun (v, l) -> (v, if l = l2 then b1.label else l)) inc);
                      }
                    | _ -> n)
                  b.insns;
            })
          blocks
      in
      go { fn with Func.blocks = blocks }
  in
  go fn

(* The phi -> select conversion (SimplifyCFG in the paper):

     C:  br %c, %A, %B          C: %x = select %c, %va, %vb
     A:  br %M             =>      br %M
     B:  br %M
     M:  %x = phi [%va,%A],[%vb,%B]

   Only fires for empty A/B (the classic diamond of Figure "3.4"), and a
   triangle variant where one arm is C itself. *)
let phi_to_select (fn : Func.t) : Func.t =
  let block l = Func.find_block_exn fn l in
  let is_empty_forwarder l target =
    let b = block l in
    b.insns = [] && b.term = Br target
  in
  let preds = Func.predecessors fn in
  let candidate =
    List.find_map
      (fun (c : Func.block) ->
        match c.term with
        | Cond_br (cond, a, bl) when a <> bl -> (
          (* diamond: both arms empty forwarders to the same M *)
          let target_of l = match (block l).term with Br m -> Some m | _ -> None in
          match (target_of a, target_of bl) with
          | Some m1, Some m2
            when m1 = m2
                 && is_empty_forwarder a m1
                 && is_empty_forwarder bl m1
                 && List.assoc_opt a preds = Some [ c.label ]
                 && List.assoc_opt bl preds = Some [ c.label ]
                 && (match List.assoc_opt m1 preds with
                    | Some ps -> List.sort compare ps = List.sort compare [ a; bl ]
                    | None -> false) ->
            Some (c, cond, a, bl, m1)
          | _ -> None)
        | _ -> None)
      fn.blocks
  in
  match candidate with
  | None -> fn
  | Some (c, cond, a, bl, m) ->
    let mb = block m in
    (* phis in M become selects appended to C *)
    let selects, rest =
      List.fold_left
        (fun (sels, rest) n ->
          match n.Instr.ins with
          | Phi (ty, inc) -> (
            let va = List.assoc_opt a (List.map (fun (v, l) -> (l, v)) inc) in
            let vb = List.assoc_opt bl (List.map (fun (v, l) -> (l, v)) inc) in
            match (va, vb) with
            | Some va, Some vb ->
              (sels @ [ { n with Instr.ins = Select (cond, ty, va, vb) } ], rest)
            | _ -> (sels, rest @ [ n ]))
          | _ -> (sels, rest @ [ n ]))
        ([], []) mb.insns
    in
    if selects = [] then fn
    else begin
      let blocks =
        List.filter_map
          (fun (b : Func.block) ->
            if b.label = c.label then Some { b with insns = b.insns @ selects; term = Br m }
            else if b.label = a || b.label = bl then None
            else if b.label = m then Some { b with insns = rest }
            else Some b)
          fn.blocks
      in
      { fn with Func.blocks = blocks }
    end

let run (_cfg : Pass.config) (fn : Func.t) : Func.t =
  let fn = fold_constant_branches fn in
  let fn = Dce.remove_unreachable_blocks fn in
  let fn = prune_phis fn in
  let fn = phi_to_select fn in
  let fn = merge_blocks fn in
  fn

let pass : Pass.t = { Pass.name = "simplifycfg"; run }
