(* Function inlining.

   Small defined callees are cloned into the caller: arguments substitute
   parameters, the callee's blocks are spliced in with fresh names, and
   returns become branches to a continuation block (with a phi when the
   callee returns a value).

   Cost model: instruction count, with freeze counting ZERO when
   [inliner_freeze_free] — the paper's Section 6 change "we changed the
   inliner to recognize freeze instructions as zero cost ... to avoid
   changing the behavior of the inliner as much as possible".  Without
   it, freeze instructions introduced by the fixed passes would push
   callees over the threshold and perturb inlining decisions. *)

open Ub_ir
open Instr

let threshold = 30

let callee_cost (cfg : Pass.config) (fn : Func.t) : int =
  List.fold_left
    (fun acc (b : Func.block) ->
      acc + 1
      + List.length
          (List.filter
             (fun n ->
               match n.Instr.ins with
               | Freeze _ -> not cfg.Pass.inliner_freeze_free
               | _ -> true)
             b.insns))
    0 fn.blocks

(* Splice [callee] into [caller] at the call site [call_block]/[idx]. *)
let inline_call (caller : Func.t) (callee : Func.t) ~(call_block : Instr.label)
    ~(call_def : Instr.var option) ~(args : (Types.t * operand) list) : Func.t =
  let suffix = ".inl" ^ string_of_int (Hashtbl.hash (caller.Func.name, call_block, call_def)) in
  (* rename callee locals *)
  let callee_defs =
    List.map fst (Func.defs callee)
  in
  let param_map = List.map2 (fun (p, _) (_, a) -> (p, a)) callee.Func.args args in
  let rename_var v = v ^ suffix in
  let rename_label l = l ^ suffix in
  let rename_op = function
    | Var v -> (
      match List.assoc_opt v param_map with
      | Some a -> a
      | None -> if List.mem v callee_defs then Var (rename_var v) else Var v)
    | Const _ as c -> c
  in
  let cont_label = rename_label "cont" in
  let ret_sites = ref [] in
  let callee_blocks =
    List.map
      (fun (b : Func.block) ->
        let insns =
          List.map
            (fun n ->
              let ins =
                match n.Instr.ins with
                | Phi (ty, inc) ->
                  Phi (ty, List.map (fun (v, l) -> (rename_op v, rename_label l)) inc)
                | ins -> Instr.map_operands rename_op ins
              in
              { Instr.def = Option.map rename_var n.Instr.def; ins })
            b.insns
        in
        let term =
          match b.term with
          | Ret (_, x) ->
            ret_sites := (rename_label b.label, Some (rename_op x)) :: !ret_sites;
            Br cont_label
          | Ret_void ->
            ret_sites := (rename_label b.label, None) :: !ret_sites;
            Br cont_label
          | t -> Instr.map_term_labels rename_label (Instr.map_term_operands rename_op t)
        in
        { Func.label = rename_label b.label; insns; term })
      callee.Func.blocks
  in
  (* split the call block *)
  let cb = Func.find_block_exn caller call_block in
  let before, call_and_after =
    let rec split acc = function
      | [] -> (List.rev acc, [])
      | n :: rest when n.Instr.def = call_def
                       && (match n.Instr.ins with Call _ -> true | _ -> false) ->
        (List.rev acc, n :: rest)
      | n :: rest -> split (n :: acc) rest
    in
    split [] cb.insns
  in
  match call_and_after with
  | [] -> caller (* call not found; shouldn't happen *)
  | _ when !ret_sites = [] ->
    (* callee never returns (all paths unreachable): leave the call *)
    caller
  | call_insn :: after ->
    let entry_label = rename_label (Func.entry callee).Func.label in
    let head = { cb with Func.insns = before; term = Br entry_label } in
    (* continuation: phi of return values if needed, then the rest *)
    let cont_insns =
      match (call_def, callee.Func.ret_ty) with
      | Some d, Some ty when !ret_sites <> [] ->
        [ { Instr.def = Some d;
            ins =
              Phi
                ( ty,
                  List.map
                    (fun (l, v) -> ((match v with Some v -> v | None -> assert false), l))
                    !ret_sites );
          }
        ]
      | _ -> []
    in
    ignore call_insn;
    let cont = { Func.label = cont_label; insns = cont_insns @ after; term = cb.Func.term } in
    (* phis in successors of the original call block must now name the
       continuation block *)
    let fix_phi (b : Func.block) =
      { b with
        Func.insns =
          List.map
            (fun n ->
              match n.Instr.ins with
              | Phi (ty, inc) ->
                { n with
                  Instr.ins =
                    Phi (ty, List.map (fun (v, l) -> (v, if l = call_block then cont_label else l)) inc);
                }
              | _ -> n)
            b.Func.insns;
      }
    in
    let blocks =
      List.concat_map
        (fun (b : Func.block) ->
          if b.Func.label = call_block then (head :: callee_blocks) @ [ cont ]
          else [ fix_phi b ])
        caller.Func.blocks
    in
    { caller with Func.blocks = blocks }

let run_module (cfg : Pass.config) (m : Func.module_) : Func.module_ =
  let funcs =
    List.map
      (fun (caller : Func.t) ->
        (* inline at most a few sites per function per run *)
        let budget = ref 4 in
        let rec go caller =
          if !budget <= 0 then caller
          else begin
            let site =
              List.find_map
                (fun (b : Func.block) ->
                  List.find_map
                    (fun n ->
                      match n.Instr.ins with
                      | Call (_, callee_name, args) when callee_name <> caller.Func.name -> (
                        match Func.find_func m callee_name with
                        | Some callee
                          when callee_cost cfg callee <= threshold
                               && (not (Func.equal callee caller))
                               && List.for_all
                                    (fun (c : Func.block) ->
                                      List.for_all
                                        (fun n ->
                                          match n.Instr.ins with
                                          | Call (_, c2, _) -> c2 <> callee_name
                                          | _ -> true)
                                        c.Func.insns)
                                    callee.Func.blocks ->
                          Some (b.Func.label, n.Instr.def, args, callee)
                        | _ -> None)
                      | _ -> None)
                    b.Func.insns)
                caller.Func.blocks
            in
            match site with
            | None -> caller
            | Some (call_block, call_def, args, callee) ->
              decr budget;
              go (inline_call caller callee ~call_block ~call_def ~args)
          end
        in
        go caller)
      m.Func.funcs
  in
  { Func.funcs }

let mpass : Pass.module_pass = { Pass.mp_name = "inline"; mp_run = run_module }
