(* Reassociation (Section 10.2).

   Rewrites (a + C1) + C2 into a + (C1+C2) and canonicalizes constant
   operands of commutative operations to the right.  Reassociating must
   DROP nsw/nuw from the participating adds: the rewritten expression can
   overflow where the original did not, so keeping the attribute would
   manufacture poison — the exact reassociation bug the paper reports
   LLVM and MSVC both had.  [legacy_bugs] keeps the attributes, and the
   opt-fuzz validation flags it. *)

open Ub_support
open Ub_ir
open Instr

let conc = function Const (Constant.Int bv) -> Some bv | _ -> None

let rule (cfg : Pass.config) (fn : Func.t) (named : Instr.named) : Pass.rewrite =
  match named.ins with
  (* canonicalize constants to the RHS of commutative ops *)
  | Binop (op, attrs, ty, (Const (Constant.Int _) as c), (Var _ as x))
    when Instr.commutative op ->
    Pass.Replace_ins (Binop (op, attrs, ty, x, c))
  (* (x + C1) + C2 -> x + (C1+C2), dropping wrap flags *)
  | Binop (Add, attrs, ty, Var v, c2) -> (
    match (conc c2, Func.find_def fn v) with
    | Some k2, Some { Instr.ins = Binop (Add, inner_attrs, _, x, c1); _ } -> (
      match conc c1 with
      | Some k1 ->
        let keep = if cfg.Pass.legacy_bugs then { attrs with exact = false } else no_attrs in
        ignore inner_attrs;
        Pass.Replace_ins (Binop (Add, keep, ty, x, Const (Constant.Int (Bitvec.add k1 k2))))
      | None -> Pass.Keep)
    | _ -> Pass.Keep)
  (* (x - C) -> x + (-C) to expose reassociation *)
  | Binop (Sub, attrs, ty, x, c) -> (
    match conc c with
    | Some k when not (Bitvec.is_zero k) ->
      let keep = if cfg.Pass.legacy_bugs then attrs else no_attrs in
      Pass.Replace_ins (Binop (Add, { keep with exact = false }, ty, x, Const (Constant.Int (Bitvec.neg k))))
    | _ -> Pass.Keep)
  | _ -> Pass.Keep

let pass : Pass.t =
  { Pass.name = "reassociate"; run = (fun cfg fn -> Pass.rewrite_to_fixpoint (rule cfg) fn) }
