(* Global value numbering.

   Two ingredients, exactly the ones Section 3.3 discusses:

   1. Expression numbering: pure instructions with identical opcodes and
      congruent operands get the same value number; uses of later
      computations are rewritten to the dominating representative (the
      now-dead duplicates are left for DCE).

   2. Predicate propagation: on the true edge of `br (icmp eq a, b)`, the
      classes of [a] and [b] are merged inside the dominated region, with
      the *right-hand side* chosen as representative — this is what turns
      `foo(w)` into `foo(y)` in the paper's example, and it is sound only
      because branching on poison is UB in the proposed semantics
      (the soundness matrix demonstrates it is wrong under Branch_nondet).

   freeze is handled conservatively: every freeze is its own class (the
   paper notes GVN "does not yet know how to fold equivalent freeze
   instructions"; folding them is only sound when *all* uses are
   replaced, which this pass does not attempt).

   Phi operands are never rewritten: a fact or numbering established in a
   block only holds on paths through it, but a phi operand is evaluated
   at the end of the *incoming* block. *)

open Ub_ir
open Instr
module A = Ub_analysis

type key = string

let key_of_operand = function
  | Var v -> "%" ^ v
  | Const c -> Constant.to_string c ^ ":" ^ Types.to_string (Constant.ty c)

let key_of_insn (ins : Instr.t) (op : operand -> key) : key option =
  match ins with
  | Binop (bop, attrs, ty, a, b) ->
    let a, b =
      if Instr.commutative bop then begin
        let ka = op a and kb = op b in
        if ka <= kb then (a, b) else (b, a)
      end
      else (a, b)
    in
    Some
      (Printf.sprintf "%s%s%s%s %s %s,%s" (binop_name bop)
         (if attrs.nsw then ".nsw" else "")
         (if attrs.nuw then ".nuw" else "")
         (if attrs.exact then ".exact" else "")
         (Types.to_string ty) (op a) (op b))
  | Icmp (pred, ty, a, b) ->
    Some (Printf.sprintf "icmp.%s %s %s,%s" (pred_name pred) (Types.to_string ty) (op a) (op b))
  | Select (c, ty, a, b) ->
    Some (Printf.sprintf "select %s %s,%s,%s" (Types.to_string ty) (op c) (op a) (op b))
  | Conv (cop, from, x, to_) ->
    Some
      (Printf.sprintf "%s %s %s %s" (conv_name cop) (Types.to_string from) (op x)
         (Types.to_string to_))
  | Bitcast (from, x, to_) ->
    Some (Printf.sprintf "bitcast %s %s %s" (Types.to_string from) (op x) (Types.to_string to_))
  | Gep { inbounds; pointee; base; indices } ->
    Some
      (Printf.sprintf "gep%s %s %s %s"
         (if inbounds then ".ib" else "")
         (Types.to_string pointee) (op base)
         (String.concat "," (List.map (fun (_, v) -> op v) indices)))
  | Freeze _ -> None (* conservatively unique; see header comment *)
  | Phi _ | Load _ | Store _ | Call _ | Extractelement _ | Insertelement _ -> None

(* Collect "a == rhs" facts that hold on entry to single-predecessor
   branch targets. *)
let equality_facts (fn : Func.t) (cfg_a : A.Cfg.t) :
    (Instr.label, (Instr.var * operand) list) Hashtbl.t =
  let eq_facts = Hashtbl.create 16 in
  let record target fact =
    let cur = match Hashtbl.find_opt eq_facts target with Some l -> l | None -> [] in
    Hashtbl.replace eq_facts target (fact :: cur)
  in
  List.iter
    (fun (b : Func.block) ->
      match b.term with
      | Cond_br (Var c, t, e) when t <> e -> (
        let fact_of a b' =
          match (a, b') with
          | Var va, rhs -> Some (va, rhs)
          | lhs, Var vb -> Some (vb, lhs)
          | _ -> None
        in
        match Func.find_def fn c with
        | Some { Instr.ins = Icmp (Eq, _, a, b'); _ } -> (
          match (A.Cfg.predecessors cfg_a t, fact_of a b') with
          | [ p ], Some f when p = b.label -> record t f
          | _ -> ())
        | Some { Instr.ins = Icmp (Ne, _, a, b'); _ } -> (
          match (A.Cfg.predecessors cfg_a e, fact_of a b') with
          | [ p ], Some f when p = b.label -> record e f
          | _ -> ())
        | _ -> ())
      | _ -> ())
    fn.blocks;
  eq_facts

let run (_cfg : Pass.config) (fn : Func.t) : Func.t =
  let cfg_a = A.Cfg.build fn in
  let dom = A.Dom.compute cfg_a in
  let eq_facts = equality_facts fn cfg_a in
  let repr : (Instr.var, operand) Hashtbl.t = Hashtbl.create 32 in
  let rec canon (o : operand) : operand =
    match o with
    | Var v -> (
      match Hashtbl.find_opt repr v with
      | Some (Var v') when v' <> v -> canon (Var v')
      | Some (Const _ as c) -> c
      | _ -> o)
    | Const _ -> o
  in
  let ckey o = key_of_operand (canon o) in
  let exprs : (key, Instr.var) Hashtbl.t = Hashtbl.create 64 in
  let new_blocks : (Instr.label, Func.block) Hashtbl.t = Hashtbl.create 16 in
  let rec walk (l : Instr.label) =
    let b = Func.find_block_exn fn l in
    let added_exprs = ref [] in
    let added_reprs = ref [] in
    let add_repr v rhs =
      if (not (Hashtbl.mem repr v)) && canon rhs <> Var v then begin
        Hashtbl.replace repr v (canon rhs);
        added_reprs := v :: !added_reprs
      end
    in
    (match Hashtbl.find_opt eq_facts l with
    | Some facts -> List.iter (fun (v, rhs) -> add_repr v rhs) facts
    | None -> ());
    let insns' =
      List.map
        (fun { Instr.def; ins } ->
          let ins' = match ins with Phi _ -> ins | _ -> Instr.map_operands canon ins in
          (match def with
          | None -> ()
          | Some d -> (
            match key_of_insn ins' ckey with
            | None -> ()
            | Some k -> (
              match Hashtbl.find_opt exprs k with
              | Some leader when leader <> d -> add_repr d (Var leader)
              | Some _ -> ()
              | None ->
                Hashtbl.replace exprs k d;
                added_exprs := k :: !added_exprs)));
          { Instr.def; ins = ins' })
        b.insns
    in
    let term' = Instr.map_term_operands canon b.term in
    Hashtbl.replace new_blocks l { b with insns = insns'; term = term' };
    List.iter walk (A.Dom.children dom l);
    List.iter (Hashtbl.remove exprs) !added_exprs;
    List.iter (Hashtbl.remove repr) !added_reprs
  in
  walk (Func.entry fn).label;
  { fn with
    Func.blocks =
      List.map
        (fun (b : Func.block) ->
          match Hashtbl.find_opt new_blocks b.label with Some nb -> nb | None -> b)
        fn.blocks;
  }

let pass : Pass.t = { Pass.name = "gvn"; run }
