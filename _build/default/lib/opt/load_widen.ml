(* Load widening (Section 5.4).

   Widening a narrow load to the machine word is profitable but
   hazardous: with a plain integer widened load, poison (or
   uninitialized) bits in the *extra* bytes contaminate the whole loaded
   value.  The paper's fix is to widen to a VECTOR load and extract the
   original element — poison is tracked per element, so the neighbours
   can't hurt the value actually used.

   - [freeze] pipeline: i16 load at an even offset inside an allocation
     with >= 4 bytes remaining becomes load <2 x i16> + extractelement 0.
   - [legacy_bugs] pipeline: the unsound integer widening
     (load i32 + trunc), which t-matrix flags under the proposed
     semantics.

   We only widen loads whose pointer is a direct malloc result (so
   in-bounds-ness of the extra bytes is known). *)

open Ub_ir
open Instr

let malloc_size (fn : Func.t) (p : operand) : int option =
  match p with
  | Var v -> (
    match Func.find_def fn v with
    | Some { Instr.ins = Call (_, name, [ (_, Const (Constant.Int n)) ]); _ }
      when name = "malloc" || name = "alloca" ->
      Ub_support.Bitvec.to_uint_opt n
    | _ -> None)
  | Const _ -> None

let rule (cfg : Pass.config) (fn : Func.t) (named : Instr.named) : Pass.rewrite =
  match named.ins with
  | Load ((Types.Int 16 as ty), p) -> (
    match malloc_size fn p with
    | Some sz when sz >= 4 ->
      if cfg.Pass.freeze then begin
        (* vector widening: per-element poison, sound *)
        let vty = Types.Vec (2, Types.Int 16) in
        let pv = Func.fresh_var fn "lw.p" in
        let wide = Func.fresh_var fn "lw.v" in
        Pass.Expand
          [ { Instr.def = Some pv; ins = Bitcast (Types.Ptr ty, p, Types.Ptr vty) };
            { Instr.def = Some wide; ins = Load (vty, Var pv) };
            { named with
              Instr.ins =
                Extractelement (vty, Var wide, Const (Constant.of_int ~width:32 0));
            };
          ]
      end
      else if cfg.Pass.legacy_bugs then begin
        (* integer widening: neighbouring poison/uninit bits contaminate
           the result — unsound, kept to reproduce the bug *)
        let pv = Func.fresh_var fn "lw.p" in
        let wide = Func.fresh_var fn "lw.w" in
        Pass.Expand
          [ { Instr.def = Some pv; ins = Bitcast (Types.Ptr ty, p, Types.Ptr (Types.Int 32)) };
            { Instr.def = Some wide; ins = Load (Types.Int 32, Var pv) };
            { named with Instr.ins = Conv (Trunc, Types.Int 32, Var wide, ty) };
          ]
      end
      else Pass.Keep
    | _ -> Pass.Keep)
  | _ -> Pass.Keep

let pass : Pass.t =
  { Pass.name = "load-widen"; run = (fun cfg fn -> Pass.rewrite_to_fixpoint ~max_iters:1 (rule cfg) fn) }
