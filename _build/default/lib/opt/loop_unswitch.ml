(* Loop unswitching (Sections 3.3 and 5.1).

   When a branch inside a loop tests a loop-invariant condition, the loop
   is duplicated and the test moves outside:

       while (c) { if (c2) foo else bar }
     =>
       if (FREEZE c2) { while (c) foo } else { while (c) bar }

   The freeze is the paper's fix: hoisting the branch makes it execute on
   iterations-zero paths where the original never branched on c2, so if
   c2 is poison the transformed program would be UB under the proposed
   branch-on-poison-is-UB rule.  freeze turns that into a nondeterministic
   (but fixed) choice, which *refines* the original.  The [legacy_bugs]
   variant hoists the raw condition — the end-to-end miscompilation
   of PR27506.

   Implementation restrictions (bail out otherwise): the loop has a
   preheader, no value defined in the loop is used outside it, and the
   unswitched condition is an operand that dominates the preheader. *)

open Ub_ir
open Instr
module A = Ub_analysis

let defs_used_outside (fn : Func.t) (lp : A.Loops.loop) : bool =
  let inside = lp.A.Loops.blocks in
  let loop_defs =
    List.concat_map
      (fun (b : Func.block) ->
        if List.mem b.label inside then List.filter_map (fun n -> n.Instr.def) b.insns else [])
      fn.blocks
  in
  List.exists
    (fun (b : Func.block) ->
      (not (List.mem b.label inside))
      && (List.exists
            (fun n ->
              List.exists
                (function Var v -> List.mem v loop_defs | Const _ -> false)
                (operands n.Instr.ins))
            b.insns
         || List.exists
              (function Var v -> List.mem v loop_defs | Const _ -> false)
              (term_operands b.term)))
    fn.blocks

(* Rename every def and label of a set of blocks with a suffix. *)
let clone_blocks (blocks : Func.block list) ~(suffix : string) ~(in_loop : Instr.label -> bool)
    : Func.block list =
  let rename_label l = if in_loop l then l ^ suffix else l in
  let defs =
    List.concat_map (fun (b : Func.block) -> List.filter_map (fun n -> n.Instr.def) b.insns) blocks
  in
  let rename_var v = if List.mem v defs then v ^ suffix else v in
  let rename_op = function
    | Var v -> Var (rename_var v)
    | Const _ as c -> c
  in
  List.map
    (fun (b : Func.block) ->
      { Func.label = rename_label b.label;
        insns =
          List.map
            (fun n ->
              let ins =
                match n.Instr.ins with
                | Phi (ty, inc) ->
                  Phi (ty, List.map (fun (v, l) -> (rename_op v, rename_label l)) inc)
                | ins -> Instr.map_operands rename_op ins
              in
              { Instr.def = Option.map rename_var n.Instr.def; ins })
            b.insns;
        term =
          Instr.map_term_labels rename_label (Instr.map_term_operands rename_op b.term);
      })
    blocks

let unswitch_one (cfg : Pass.config) (fn : Func.t) (lp : A.Loops.loop) : Func.t option =
  match lp.A.Loops.preheader with
  | None -> None
  | Some ph ->
    if defs_used_outside fn lp then None
    else begin
      (* find a conditional branch in the loop on an invariant condition
         that is not the loop's own exit test *)
      let candidate =
        List.find_map
          (fun (b : Func.block) ->
            if not (List.mem b.label lp.A.Loops.blocks) then None
            else
              match b.term with
              | Cond_br (c, t, e)
                when A.Loops.operand_invariant fn lp c
                     && t <> e
                     && List.mem t lp.A.Loops.blocks
                     && List.mem e lp.A.Loops.blocks ->
                Some (b.label, c)
              | _ -> None)
          fn.blocks
      in
      match candidate with
      | None -> None
      | Some (branch_block, cond) ->
        let in_loop l = List.mem l lp.A.Loops.blocks in
        let loop_blocks = List.filter (fun (b : Func.block) -> in_loop b.Func.label) fn.blocks in
        (* specialize: in copy T the branch goes to its true target, in
           copy F to the false target *)
        let specialize suffix keep_true blocks =
          List.map
            (fun (b : Func.block) ->
              if b.Func.label = branch_block ^ suffix then
                match b.Func.term with
                | Cond_br (_, t, e) -> { b with Func.term = Br (if keep_true then t else e) }
                | _ -> b
              else b)
            blocks
        in
        let copy_t = specialize ".ust" true (clone_blocks loop_blocks ~suffix:".ust" ~in_loop) in
        let copy_f = specialize ".usf" false (clone_blocks loop_blocks ~suffix:".usf" ~in_loop) in
        (* exit-block phis: add incomings for the cloned exiting blocks *)
        let exit_fix (b : Func.block) =
          if in_loop b.Func.label then b
          else
            { b with
              Func.insns =
                List.map
                  (fun n ->
                    match n.Instr.ins with
                    | Phi (ty, inc) ->
                      let extra =
                        List.concat_map
                          (fun (v, l) ->
                            if in_loop l then [ (v, l ^ ".ust"); (v, l ^ ".usf") ] else [])
                          inc
                      in
                      let kept = List.filter (fun (_, l) -> not (in_loop l)) inc in
                      { n with Instr.ins = Phi (ty, kept @ extra) }
                    | _ -> n)
                  b.Func.insns;
            }
        in
        (* new preheader: branch on (freeze cond | cond) to the copies *)
        let fcond_insns, cond_op =
          if cfg.Pass.freeze then begin
            let fv = Func.fresh_var fn "us.fr" in
            ([ { Instr.def = Some fv; ins = Freeze (Types.Int 1, cond) } ], Var fv)
          end
          else ([], cond)
          (* legacy_bugs: hoist the raw condition (the PR27506 bug).
             Without either flag we refuse to unswitch at all. *)
        in
        if (not cfg.Pass.freeze) && not cfg.Pass.legacy_bugs then None
        else begin
          let blocks' =
            List.concat_map
              (fun (b : Func.block) ->
                if b.Func.label = ph then
                  [ { b with
                      Func.insns = b.Func.insns @ fcond_insns;
                      term = Cond_br (cond_op, lp.A.Loops.header ^ ".ust", lp.A.Loops.header ^ ".usf");
                    }
                  ]
                else if in_loop b.Func.label then [] (* original loop replaced by copies *)
                else [ exit_fix b ])
              fn.blocks
          in
          (* place the copies right after the preheader *)
          let rec insert_after label acc = function
            | [] -> List.rev acc
            | (b : Func.block) :: rest when b.Func.label = label ->
              List.rev_append acc ((b :: copy_t) @ copy_f @ rest)
            | b :: rest -> insert_after label (b :: acc) rest
          in
          let blocks' = insert_after ph [] blocks' in
          (* phis in the cloned headers still name the preheader as an
             incoming: that is correct (the preheader branches to both
             cloned headers).  Specialization makes one arm of each copy
             unreachable; prune it immediately. *)
          Some (Dce.remove_unreachable_blocks { fn with Func.blocks = blocks' })
        end
    end

let run (cfg : Pass.config) (fn : Func.t) : Func.t =
  if (not cfg.Pass.freeze) && not cfg.Pass.legacy_bugs then fn
  else begin
    let loops = A.Loops.compute fn in
    (* unswitch at most one loop per run to keep code growth in check *)
    let rec try_loops = function
      | [] -> fn
      | lp :: rest -> (
        match unswitch_one cfg fn lp with
        | Some fn' -> fn'
        | None -> try_loops rest)
    in
    try_loops loops.A.Loops.loops
  end

let pass : Pass.t = { Pass.name = "loop-unswitch"; run }
