(* CodeGenPrepare (Section 6, "Optimizations").

   Two backend-enabling transformations the paper had to teach about
   freeze to recover performance:

   1. Compare sinking: a comparison whose only use is a conditional
      branch is moved directly before the branch, so instruction
      selection can fuse cmp+jcc.  A branch on freeze(icmp ...) blocks
      this unless [cgp_handles_freeze].

   2. freeze(icmp %x, C) => icmp (freeze %x), C — a refinement (the
      frozen compare's nondeterminism on poison %x collapses to a
      deterministic function of the frozen %x), performed late because it
      breaks scalar evolution's pattern matching if done early.  Only
      with [cgp_handles_freeze]. *)

open Ub_ir
open Instr

let use_count = Instcombine.use_count

(* freeze(icmp x, C) -> icmp (freeze x), C *)
let push_freeze_through_icmp (cfg : Pass.config) (fn : Func.t) : Func.t =
  if not cfg.Pass.cgp_handles_freeze then fn
  else
    Pass.rewrite_to_fixpoint
      (fun fn named ->
        match named.ins with
        | Freeze (Types.Int 1, Var v) -> (
          match Func.find_def fn v with
          | Some { Instr.ins = Icmp (pred, ty, x, (Const (Constant.Int _) as c)); _ }
            when use_count fn v = 1 ->
            let fv = Func.fresh_var fn "cgp.fr" in
            Pass.Expand
              [ { Instr.def = Some fv; ins = Freeze (ty, x) };
                { named with Instr.ins = Icmp (pred, ty, Var fv, c) };
              ]
          | _ -> Pass.Keep)
        | _ -> Pass.Keep)
      fn

(* Move a single-use icmp to just before the branch that uses it. *)
let sink_compares (cfg : Pass.config) (fn : Func.t) : Func.t =
  { fn with
    Func.blocks =
      List.map
        (fun (b : Func.block) ->
          match b.term with
          | Cond_br (Var c, _, _) -> (
            match List.partition (fun n -> n.Instr.def = Some c) b.insns with
            | [ cmp ], rest -> (
              match cmp.Instr.ins with
              | Icmp _ when use_count fn c = 1 -> { b with insns = rest @ [ cmp ] }
              | Freeze _ when cfg.Pass.cgp_handles_freeze && use_count fn c = 1 ->
                (* a frozen condition can also sink: all its operands
                   dominate the block already *)
                { b with insns = rest @ [ cmp ] }
              | _ -> b)
            | _ -> b)
          | _ -> b)
        fn.blocks;
  }

let run (cfg : Pass.config) (fn : Func.t) : Func.t =
  let fn = push_freeze_through_icmp cfg fn in
  sink_compares cfg fn

let pass : Pass.t = { Pass.name = "codegenprepare"; run }
