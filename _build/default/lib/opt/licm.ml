(* Loop-invariant code motion.

   Safe hoisting: speculatable loop-invariant instructions move to the
   preheader.  Instructions that only produce *deferred* UB when their
   original guard would have failed (add nsw etc.) are speculatable —
   this is the whole point of poison (Section 2.3).

   Division hoisting is where Section 3.2 / 5.6 bites:
   - hoisting a division whose divisor is a nonzero *constant* is safe;
   - the [legacy_bugs] variant also hoists when isKnownToBeAPowerOfTwo
     says the divisor can't be zero — ignoring that the fact only holds
     *up to poison*.  If the divisor is poison and the loop never runs,
     the hoisted division is UB the original program did not have.  The
     checker catches this variant (test_matrix). *)

open Ub_support
open Ub_ir
open Instr
module A = Ub_analysis

let nonzero_constant (op : operand) =
  match op with
  | Const (Constant.Int bv) -> not (Bitvec.is_zero bv)
  | _ -> false

let hoistable (cfg : Pass.config) (fn : Func.t) (lp : A.Loops.loop) (ins : Instr.t) : bool =
  A.Loops.insn_invariant fn lp ins
  &&
  match ins with
  | Binop ((UDiv | URem), _, _, _, divisor) ->
    nonzero_constant divisor
    || (cfg.Pass.legacy_bugs && A.Known_bits.is_known_nonzero fn divisor)
  | Binop ((SDiv | SRem), _, _, _, divisor) ->
    (* also needs no INT_MIN/-1 trap: require a constant divisor other
       than -1 and 0 *)
    (match divisor with
    | Const (Constant.Int bv) -> (not (Bitvec.is_zero bv)) && not (Bitvec.is_all_ones bv)
    | _ -> false)
  | Freeze _ -> true (* movable (not duplicated) out of loops: fine *)
  | Phi _ -> false
  | ins -> Instr.speculatable ins && not (Instr.has_side_effects ins)

let run (cfg : Pass.config) (fn : Func.t) : Func.t =
  let loops = A.Loops.compute fn in
  List.fold_left
    (fun fn (lp : A.Loops.loop) ->
      match lp.preheader with
      | None -> fn
      | Some ph ->
        (* single upward pass per loop: hoist instructions whose operands
           are invariant (including previously hoisted ones) *)
        let hoisted = ref [] in
        let fn' =
          { fn with
            Func.blocks =
              List.map
                (fun (b : Func.block) ->
                  if not (List.mem b.label lp.blocks) then b
                  else
                    { b with
                      insns =
                        List.filter
                          (fun n ->
                            if hoistable cfg fn lp n.Instr.ins && n.Instr.def <> None then begin
                              hoisted := n :: !hoisted;
                              false
                            end
                            else true)
                          b.insns;
                    })
                fn.blocks;
          }
        in
        if !hoisted = [] then fn
        else
          { fn' with
            Func.blocks =
              List.map
                (fun (b : Func.block) ->
                  if b.label = ph then { b with insns = b.insns @ List.rev !hoisted } else b)
                fn'.blocks;
          })
    fn loops.A.Loops.loops

let pass : Pass.t = { Pass.name = "licm"; run }
