(* Dead code elimination: removes unused side-effect-free instructions
   (including dead loads — removing a potentially-trapping operation only
   enlarges the domain of definedness, a legal refinement) and blocks
   unreachable from the entry. *)

open Ub_ir
open Instr

let removable (ins : Instr.t) =
  match ins with
  | Store _ | Call _ -> false
  | _ -> true

(* Liveness by mark-and-sweep from the observable roots (terminators and
   side-effecting instructions), so that dead phi cycles — a phi and its
   increment that only feed each other — are collected too. *)
let remove_dead_insns (fn : Func.t) : Func.t =
  let def_of = Hashtbl.create 32 in
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun n -> match n.Instr.def with Some d -> Hashtbl.replace def_of d n | None -> ())
        b.insns)
    fn.blocks;
  let live = Hashtbl.create 32 in
  let rec mark = function
    | Const _ -> ()
    | Var v ->
      if not (Hashtbl.mem live v) then begin
        Hashtbl.replace live v ();
        match Hashtbl.find_opt def_of v with
        | Some n -> List.iter mark (operands n.Instr.ins)
        | None -> () (* argument *)
      end
  in
  List.iter
    (fun (b : Func.block) ->
      List.iter mark (term_operands b.term);
      List.iter
        (fun n -> if not (removable n.Instr.ins) then List.iter mark (operands n.Instr.ins))
        b.insns)
    fn.blocks;
  Func.map_insns fn (fun n ->
      match n.Instr.def with
      | Some d when (not (Hashtbl.mem live d)) && removable n.Instr.ins -> []
      | None when removable n.Instr.ins -> [] (* void pure instruction: impossible, kept for safety *)
      | _ -> [ n ])

let remove_unreachable_blocks (fn : Func.t) : Func.t =
  let cfg = Ub_analysis.Cfg.build fn in
  let keep = List.filter (fun (b : Func.block) -> Ub_analysis.Cfg.is_reachable cfg b.label) fn.blocks in
  if List.length keep = List.length fn.blocks then fn
  else begin
    (* drop phi incomings from removed blocks *)
    let live l = List.exists (fun (b : Func.block) -> b.label = l) keep in
    let fixed =
      List.map
        (fun (b : Func.block) ->
          { b with
            insns =
              List.map
                (fun n ->
                  match n.Instr.ins with
                  | Phi (ty, inc) ->
                    { n with Instr.ins = Phi (ty, List.filter (fun (_, l) -> live l) inc) }
                  | _ -> n)
                b.insns;
          })
        keep
    in
    (* single-incoming phis become copies *)
    let substs = ref [] in
    let fixed =
      List.map
        (fun (b : Func.block) ->
          { b with
            insns =
              List.concat_map
                (fun n ->
                  match (n.Instr.def, n.Instr.ins) with
                  | Some d, Phi (_, [ (v, _) ]) ->
                    substs := (d, v) :: !substs;
                    []
                  | _ -> [ n ])
                b.insns;
          })
        fixed
    in
    let fn' = { fn with Func.blocks = fixed } in
    List.fold_left (fun acc (v, by) -> Func.replace_uses acc ~v ~by) fn' !substs
  end

let pass : Pass.t =
  { Pass.name = "dce";
    run = (fun _cfg fn -> remove_dead_insns (remove_unreachable_blocks fn));
  }
