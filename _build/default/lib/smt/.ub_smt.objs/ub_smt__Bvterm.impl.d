lib/smt/bvterm.ml: Array Bitvec Circuit List Printf Ub_support
