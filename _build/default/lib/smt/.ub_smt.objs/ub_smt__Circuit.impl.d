lib/smt/circuit.ml: Array Hashtbl List Solver Ub_sat
