(* Boolean circuits with constant-folding smart constructors and a
   Tseitin translation to CNF for the CDCL solver.  The refinement
   checker builds one circuit per verification query; bit-blasted
   bitvector arithmetic lives in [Bvterm] on top of this module. *)

type t = { id : int; node : node }

and node =
  | True
  | False
  | Input of int (* free boolean variable, by input index *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Ite of t * t * t

type ctx = {
  mutable next_id : int;
  mutable next_input : int;
  mutable inputs : (int * string) list; (* input index -> debug name *)
}

let create_ctx () = { next_id = 2; next_input = 0; inputs = [] }

let mk ctx node =
  let id = ctx.next_id in
  ctx.next_id <- ctx.next_id + 1;
  { id; node }

let btrue = { id = 0; node = True }
let bfalse = { id = 1; node = False }
let of_bool b = if b then btrue else bfalse

let fresh ?(name = "b") ctx =
  let idx = ctx.next_input in
  ctx.next_input <- ctx.next_input + 1;
  ctx.inputs <- (idx, name) :: ctx.inputs;
  mk ctx (Input idx)

let is_true b = b.node = True
let is_false b = b.node = False

(* Smart constructors with local simplification.  Structural-equality
   tests use ids (cheap physical-by-construction sharing). *)

let rec bnot ctx a =
  match a.node with
  | True -> bfalse
  | False -> btrue
  | Not x -> x
  | _ -> mk ctx (Not a)

and band ctx a b =
  if a.id = b.id then a
  else
    match (a.node, b.node) with
    | True, _ -> b
    | _, True -> a
    | False, _ | _, False -> bfalse
    | Not x, _ when x.id = b.id -> bfalse
    | _, Not y when y.id = a.id -> bfalse
    | _ -> mk ctx (And (a, b))

and bor ctx a b =
  if a.id = b.id then a
  else
    match (a.node, b.node) with
    | False, _ -> b
    | _, False -> a
    | True, _ | _, True -> btrue
    | Not x, _ when x.id = b.id -> btrue
    | _, Not y when y.id = a.id -> btrue
    | _ -> mk ctx (Or (a, b))

and bxor ctx a b =
  if a.id = b.id then bfalse
  else
    match (a.node, b.node) with
    | False, _ -> b
    | _, False -> a
    | True, _ -> bnot ctx b
    | _, True -> bnot ctx a
    | Not x, Not y -> bxor ctx x y
    | _ -> mk ctx (Xor (a, b))

and bite ctx c a b =
  if a.id = b.id then a
  else
    match (c.node, a.node, b.node) with
    | True, _, _ -> a
    | False, _, _ -> b
    | _, True, False -> c
    | _, False, True -> bnot ctx c
    | _, True, _ -> bor ctx c b
    | _, False, _ -> band ctx (bnot ctx c) b
    | _, _, True -> bor ctx (bnot ctx c) a
    | _, _, False -> band ctx c a
    | _ -> mk ctx (Ite (c, a, b))

let beq ctx a b = bnot ctx (bxor ctx a b)
let bimplies ctx a b = bor ctx (bnot ctx a) b

let big_and ctx = List.fold_left (band ctx) btrue
let big_or ctx = List.fold_left (bor ctx) bfalse

(* ------------------------------------------------------------------ *)
(* Tseitin CNF                                                         *)
(* ------------------------------------------------------------------ *)

module Cnf = struct
  open Ub_sat

  type builder = {
    solver : Solver.t;
    node_var : (int, int) Hashtbl.t; (* circuit node id -> SAT var *)
    input_var : (int, int) Hashtbl.t; (* input index -> SAT var *)
    mutable ok : bool; (* false once add_clause reported level-0 unsat *)
  }

  let add b c = if not (Solver.add_clause b.solver c) then b.ok <- false

  (* Translate a node to a SAT variable, memoized. *)
  let rec lit_of (b : builder) (t : t) : Solver.lit =
    match t.node with
    | True -> Solver.pos 0 (* var 0 is pinned true *)
    | False -> Solver.neg 0
    | Input i -> Solver.pos (Hashtbl.find b.input_var i)
    | Not x -> Solver.lnot (lit_of b x)
    | _ -> (
      match Hashtbl.find_opt b.node_var t.id with
      | Some v -> Solver.pos v
      | None ->
        let v = fresh_var b in
        Hashtbl.replace b.node_var t.id v;
        let out = Solver.pos v in
        (match t.node with
        | And (x, y) ->
          let lx = lit_of b x and ly = lit_of b y in
          add b [ Solver.lnot out; lx ];
          add b [ Solver.lnot out; ly ];
          add b [ out; Solver.lnot lx; Solver.lnot ly ]
        | Or (x, y) ->
          let lx = lit_of b x and ly = lit_of b y in
          add b [ out; Solver.lnot lx ];
          add b [ out; Solver.lnot ly ];
          add b [ Solver.lnot out; lx; ly ]
        | Xor (x, y) ->
          let lx = lit_of b x and ly = lit_of b y in
          add b [ Solver.lnot out; lx; ly ];
          add b [ Solver.lnot out; Solver.lnot lx; Solver.lnot ly ];
          add b [ out; lx; Solver.lnot ly ];
          add b [ out; Solver.lnot lx; ly ]
        | Ite (c, x, y) ->
          let lc = lit_of b c and lx = lit_of b x and ly = lit_of b y in
          add b [ Solver.lnot out; Solver.lnot lc; lx ];
          add b [ Solver.lnot out; lc; ly ];
          add b [ out; Solver.lnot lc; Solver.lnot lx ];
          add b [ out; lc; Solver.lnot ly ]
        | True | False | Input _ | Not _ -> assert false);
        out)

  and fresh_var b =
    (* solver vars were preallocated; track a counter in the table *)
    match Hashtbl.find_opt b.node_var (-1) with
    | Some n ->
      Hashtbl.replace b.node_var (-1) (n + 1);
      n
    | None -> assert false

  type model = { bool_of_input : int -> bool }

  type solve_result = Sat_model of model | Unsat_r

  exception Too_hard

  (* Satisfiability of [root = true].  [max_conflicts] bounds solver
     effort; raises [Too_hard] when exceeded. *)
  let solve ?(max_conflicts = 2_000_000) (ctx : ctx) (root : t) : solve_result =
    (* var 0: constant true; then one var per input; then Tseitin vars.
       Upper bound on vars: 1 + inputs + nodes. *)
    let nvars = 1 + ctx.next_input + ctx.next_id in
    let solver = Ub_sat.Solver.create nvars in
    let b =
      { solver; node_var = Hashtbl.create 256; input_var = Hashtbl.create 64; ok = true }
    in
    Hashtbl.replace b.node_var (-1) (1 + ctx.next_input);
    for i = 0 to ctx.next_input - 1 do
      Hashtbl.replace b.input_var i (1 + i)
    done;
    add b [ Ub_sat.Solver.pos 0 ];
    let root_lit = lit_of b root in
    add b [ root_lit ];
    if not b.ok then Unsat_r
    else begin
      match
        try Ub_sat.Solver.solve ~max_conflicts solver
        with Ub_sat.Solver.Budget_exceeded -> raise Too_hard
      with
      | Ub_sat.Solver.Unsat -> Unsat_r
      | Ub_sat.Solver.Sat assignment ->
        Sat_model
          { bool_of_input =
              (fun i ->
                match Hashtbl.find_opt b.input_var i with
                | Some v -> assignment.(v)
                | None -> false);
          }
    end
end

(* Concrete evaluation of a circuit under an input assignment — used to
   cross-check the bit-blaster against Bitvec and to validate SAT
   models.  Memoized on node ids: blasted circuits are heavily shared
   DAGs. *)
let eval (assign : int -> bool) (t : t) : bool =
  let memo : (int, bool) Hashtbl.t = Hashtbl.create 256 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some v -> v
    | None ->
      let v =
        match t.node with
        | True -> true
        | False -> false
        | Input i -> assign i
        | Not x -> not (go x)
        | And (x, y) -> go x && go y
        | Or (x, y) -> go x || go y
        | Xor (x, y) -> go x <> go y
        | Ite (c, x, y) -> if go c then go x else go y
      in
      Hashtbl.replace memo t.id v;
      v
  in
  go t
