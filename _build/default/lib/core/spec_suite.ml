(* The benchmark suite: Mini-C kernels standing in for SPEC CPU 2006
   (the paper's Figure 6 names), plus the two anomaly benchmarks the
   paper calls out by name — "Stanford Queens" (register-allocation /
   LEA effect) and "Shootout nestedloop" (jump-threading compile-time
   effect) — and a bit-field-heavy "gcc" kernel that dominates the
   freeze-count statistics exactly as gcc does in §7.2.

   Each kernel is small enough to interpret in milliseconds but has a
   loop structure that exercises the passes (LICM, unswitching, GVN,
   widening, inlining, CGP).  CFP benchmarks are fixed-point versions of
   the corresponding numeric kernels (our IR is integer-only). *)

type bench = {
  name : string;
  group : [ `Cint | `Cfp | `Micro ];
  source : string;
  entry : string; (* entry function, no arguments *)
}

let b name group source = { name; group; source; entry = "main" }

(* -------------------- CINT ----------------------------------------- *)

let perlbench =
  b "perlbench" `Cint
    {|
int hash_step(int h, int c) { return ((h & 65535) * 33 + c) & 1048575; }
int main() {
  int data[64];
  for (int i = 0; i < 64; i = i + 1) { data[i] = (i * 37 + 11) % 256; }
  int h = 5381;
  for (int r = 0; r < 40; r = r + 1) {
    for (int i = 0; i < 64; i = i + 1) { h = hash_step(h, data[i]); }
    h = h ^ (h >> 7);
  }
  return h & 65535;
}
|}

let bzip2 =
  b "bzip2" `Cint
    {|
int main() {
  int buf[128];
  int x = 12345;
  for (int i = 0; i < 128; i = i + 1) {
    x = ((x & 8191) * 1103 + 12345) % 65536;
    buf[i] = (x >> 8) & 7;
  }
  /* run-length encode */
  int runs = 0;
  int total = 0;
  for (int r = 0; r < 30; r = r + 1) {
    int prev = 0 - 1;
    int len = 0;
    for (int i = 0; i < 128; i = i + 1) {
      if (buf[i] == prev) { len = len + 1; }
      else { runs = runs + 1; total = total + len * len; prev = buf[i]; len = 1; }
    }
  }
  return runs + total;
}
|}

(* gcc: the bit-field-heavy benchmark (3,993 freezes / 0.29% in §7.2). *)
let gcc =
  b "gcc" `Cint
    {|
struct rtx {
  int code : 8;
  int mode : 5;
  int jump : 1;
  int call : 1;
  int unchanging : 1;
  int volatil : 1;
  int in_struct : 1;
  int used : 1;
  int integrated : 1;
  int frame_related : 1;
};
int classify(int c) {
  if (c % 3 == 0) return 1;
  if (c % 5 == 0) return 2;
  return 0;
}
int main() {
  int acc = 0;
  for (int i = 0; i < 60; i = i + 1) {
    struct rtx r;
    r.code = i & 255;
    r.mode = i & 31;
    r.jump = i & 1;
    r.call = (i >> 1) & 1;
    r.unchanging = (i >> 2) & 1;
    r.volatil = (i >> 3) & 1;
    r.in_struct = (i >> 4) & 1;
    r.used = classify(i);
    r.integrated = 0;
    r.frame_related = (i >> 5) & 1;
    if (r.jump && !r.call) { r.mode = (r.mode + 7) & 31; }
    acc = acc + r.code + r.mode * 3 + r.jump + r.used * 5 + r.frame_related;
  }
  return acc;
}
|}

let mcf =
  b "mcf" `Cint
    {|
int main() {
  int cost[48];
  int flow[48];
  for (int i = 0; i < 48; i = i + 1) { cost[i] = (i * 17) % 31 + 1; flow[i] = 0; }
  int best = 1000000;
  for (int iter = 0; iter < 25; iter = iter + 1) {
    int sum = 0;
    for (int i = 0; i < 48; i = i + 1) {
      int c = cost[i] + flow[i] / 2;
      best = c < best ? c : best;
      flow[i] = flow[i] + (c & 3);
      sum = sum + c;
    }
    best = best + sum / 48;
  }
  return best;
}
|}

let gobmk =
  b "gobmk" `Cint
    {|
int main() {
  int board[81];
  for (int i = 0; i < 81; i = i + 1) { board[i] = (i * 7 + 3) % 3; }
  int score = 0;
  for (int pass = 0; pass < 20; pass = pass + 1) {
    for (int r = 1; r < 8; r = r + 1) {
      for (int c = 1; c < 8; c = c + 1) {
        int p = r * 9 + c;
        int n = board[p - 1] + board[p + 1] + board[p - 9] + board[p + 9];
        if (board[p] == 1 && n > 2) { score = score + 1; }
        else if (board[p] == 2 && n < 2) { score = score - 1; }
      }
    }
  }
  return score;
}
|}

let hmmer =
  b "hmmer" `Cint
    {|
int max2(int a, int b) { if (a > b) return a; return b; }
int main() {
  int vit[32];
  int trans[32];
  for (int i = 0; i < 32; i = i + 1) { vit[i] = 0; trans[i] = (i * 13) % 17; }
  for (int t = 0; t < 60; t = t + 1) {
    int glocal = t & 1;
    for (int i = 1; i < 32; i = i + 1) {
      int stay = vit[i] + trans[i];
      int move = vit[i - 1] + trans[i - 1] * 2;
      if (glocal) { vit[i] = max2(stay, move) - 1; }
      else { vit[i] = max2(stay, move + 1) - 2; }
    }
  }
  int s = 0;
  for (int i = 0; i < 32; i = i + 1) { s = s + vit[i]; }
  return s;
}
|}

let sjeng =
  b "sjeng" `Cint
    {|
int popcount16(int x) {
  int n = 0;
  for (int i = 0; i < 16; i = i + 1) { n = n + ((x >> i) & 1); }
  return n;
}
int main() {
  int score = 0;
  int pieces = 43690; /* 0xAAAA */
  for (int d = 0; d < 120; d = d + 1) {
    int moves = (pieces << 1) ^ (pieces >> 2);
    moves = moves & 65535;
    score = score + popcount16(moves) - popcount16(pieces & moves);
    pieces = ((pieces & 8191) * 5 + d) & 65535;
  }
  return score;
}
|}

let libquantum =
  b "libquantum" `Cint
    {|
int main() {
  int reg[64];
  for (int i = 0; i < 64; i = i + 1) { reg[i] = i; }
  for (int g = 0; g < 50; g = g + 1) {
    int target = g % 6;
    int phase = g & 1;
    for (int i = 0; i < 64; i = i + 1) {
      if (phase) { reg[i] = reg[i] ^ (1 << target); }
      else { reg[i] = reg[i] + (1 << target); reg[i] = reg[i] & 1023; }
      if ((reg[i] >> target) & 1) { reg[i] = reg[i] + 1; }
    }
  }
  int s = 0;
  for (int i = 0; i < 64; i = i + 1) { s = s ^ reg[i]; }
  return s;
}
|}

let h264ref =
  b "h264ref" `Cint
    {|
int iabs(int x) { if (x < 0) return 0 - x; return x; }
int main() {
  int cur[64];
  int ref[64];
  for (int i = 0; i < 64; i = i + 1) {
    cur[i] = (i * 31 + 7) % 256;
    ref[i] = (i * 29 + 3) % 256;
  }
  int best = 1000000;
  for (int dx = 0; dx < 30; dx = dx + 1) {
    int sad = 0;
    for (int i = 0; i < 56; i = i + 1) { sad = sad + iabs(cur[i] - ref[(i + dx) % 64]); }
    if (sad < best) { best = sad; }
  }
  return best;
}
|}

let omnetpp =
  b "omnetpp" `Cint
    {|
int main() {
  int heap[32];
  int n = 0;
  int clock = 0;
  int seed = 7;
  for (int ev = 0; ev < 200; ev = ev + 1) {
    seed = ((seed & 4095) * 1103 + 12345) % 32768;
    if (n < 31) {
      /* push */
      heap[n] = seed % 1000;
      int i = n;
      n = n + 1;
      while (i > 0 && heap[(i - 1) / 2] > heap[i]) {
        int t = heap[i];
        heap[i] = heap[(i - 1) / 2];
        heap[(i - 1) / 2] = t;
        i = (i - 1) / 2;
      }
    } else {
      /* pop-ish: consume the min *;*/
      clock = clock + heap[0];
      heap[0] = seed % 1000;
      n = 16;
    }
  }
  return clock + n;
}
|}

let astar =
  b "astar" `Cint
    {|
int main() {
  int dist[64];
  for (int i = 0; i < 64; i = i + 1) { dist[i] = 9999; }
  dist[0] = 0;
  for (int round = 0; round < 30; round = round + 1) {
    for (int i = 0; i < 64; i = i + 1) {
      int r = i / 8;
      int c = i % 8;
      int d = dist[i];
      int w = ((i * 13) % 7) + 1;
      if (c > 0 && dist[i - 1] + w < d) { d = dist[i - 1] + w; }
      if (c < 7 && dist[i + 1] + w < d) { d = dist[i + 1] + w; }
      if (r > 0 && dist[i - 8] + w < d) { d = dist[i - 8] + w; }
      if (r < 7 && dist[i + 8] + w < d) { d = dist[i + 8] + w; }
      dist[i] = d;
    }
  }
  return dist[63];
}
|}

let xalancbmk =
  b "xalancbmk" `Cint
    {|
int lookup(int c) {
  int t = c & 15;
  if (t < 4) return t * 3;
  if (t < 8) return t - 2;
  if (t < 12) return t ^ 5;
  return t + 7;
}
int main() {
  int out = 0;
  int state = 1;
  int strict = lookup(3) & 1;
  for (int i = 0; i < 400; i = i + 1) {
    int c = (i * 61 + 17) % 97;
    int cls = lookup(c);
    if (strict) { cls = cls & 7; }
    if (state == 1) { if (cls > 8) { state = 2; } out = out + cls; }
    else if (state == 2) { if (cls < 3) { state = 3; } out = out + cls * 2; }
    else { state = 1; out = out - 1; }
  }
  return out + state;
}
|}

(* -------------------- CFP (fixed-point stand-ins) ------------------- *)

let milc =
  b "milc" `Cfp
    {|
int main() {
  int lat[64];
  for (int i = 0; i < 64; i = i + 1) { lat[i] = (i * 11 + 5) % 128; }
  for (int sweep = 0; sweep < 25; sweep = sweep + 1) {
    for (int i = 0; i < 64; i = i + 1) {
      int up = lat[(i + 1) % 64];
      int dn = lat[(i + 63) % 64];
      lat[i] = (lat[i] * 3 + up * 2 + dn * 2) / 7;
    }
  }
  int s = 0;
  for (int i = 0; i < 64; i = i + 1) { s = s + lat[i]; }
  return s;
}
|}

let namd =
  b "namd" `Cfp
    {|
int main() {
  int fx[32];
  int px[32];
  for (int i = 0; i < 32; i = i + 1) { px[i] = i * 16; fx[i] = 0; }
  for (int step = 0; step < 30; step = step + 1) {
    for (int i = 0; i < 32; i = i + 1) {
      for (int j = i + 1; j < 32; j = j + 1) {
        int d = px[j] - px[i];
        if (d < 64 && d > -64) {
          int f = (64 - d) / 4;
          fx[i] = fx[i] - f;
          fx[j] = fx[j] + f;
        }
      }
    }
    for (int i = 0; i < 32; i = i + 1) { px[i] = px[i] + fx[i] / 16; }
  }
  int s = 0;
  for (int i = 0; i < 32; i = i + 1) { s = s + px[i]; }
  return s;
}
|}

let dealii =
  b "dealII" `Cfp
    {|
int main() {
  int u[81];
  for (int i = 0; i < 81; i = i + 1) { u[i] = ((i % 9) * (i / 9)) % 17; }
  for (int it = 0; it < 25; it = it + 1) {
    for (int r = 1; r < 8; r = r + 1) {
      for (int c = 1; c < 8; c = c + 1) {
        int p = r * 9 + c;
        u[p] = (u[p - 1] + u[p + 1] + u[p - 9] + u[p + 9] + u[p] * 4) / 8;
      }
    }
  }
  int s = 0;
  for (int i = 0; i < 81; i = i + 1) { s = s + u[i]; }
  return s;
}
|}

let soplex =
  b "soplex" `Cfp
    {|
int main() {
  int tab[48];
  for (int i = 0; i < 48; i = i + 1) { tab[i] = (i * 23 + 9) % 101 - 50; }
  int obj = 0;
  for (int it = 0; it < 40; it = it + 1) {
    int piv = 0;
    int best = 0;
    for (int i = 0; i < 48; i = i + 1) {
      if (tab[i] < best) { best = tab[i]; piv = i; }
    }
    if (best == 0) { obj = obj + 1; }
    tab[piv] = 0 - tab[piv] / 2;
    obj = obj + best;
  }
  return obj;
}
|}

let povray =
  b "povray" `Cfp
    {|
int isqrt(int x) {
  int r = 0;
  while ((r + 1) * (r + 1) <= x) { r = r + 1; }
  return r;
}
int main() {
  int hits = 0;
  for (int py = 0; py < 16; py = py + 1) {
    for (int px = 0; px < 16; px = px + 1) {
      int dx = px - 8;
      int dy = py - 8;
      int d2 = dx * dx + dy * dy;
      if (d2 < 49) { hits = hits + 16 - isqrt(d2 * 4); }
    }
  }
  return hits;
}
|}

let lbm =
  b "lbm" `Cfp
    {|
int main() {
  int f0[40];
  int f1[40];
  for (int i = 0; i < 40; i = i + 1) { f0[i] = 100 + (i * 7) % 13; f1[i] = 0; }
  for (int t = 0; t < 40; t = t + 1) {
    int even = t & 1;
    for (int i = 1; i < 39; i = i + 1) {
      if (even) { f1[i] = (f0[i - 1] * 3 + f0[i] * 10 + f0[i + 1] * 3) / 16; }
      else { f1[i] = (f0[i - 1] * 5 + f0[i] * 6 + f0[i + 1] * 5) / 16; }
    }
    for (int i = 1; i < 39; i = i + 1) { f0[i] = f1[i]; }
  }
  int s = 0;
  for (int i = 0; i < 40; i = i + 1) { s = s + f0[i]; }
  return s;
}
|}

let sphinx3 =
  b "sphinx3" `Cfp
    {|
int main() {
  int feat[32];
  int model[32];
  for (int i = 0; i < 32; i = i + 1) { feat[i] = (i * 19) % 23; model[i] = (i * 7) % 29; }
  int best = -1000000;
  for (int fr = 0; fr < 60; fr = fr + 1) {
    int score = 0;
    for (int i = 0; i < 32; i = i + 1) {
      int d = feat[i] - model[(i + fr) % 32];
      score = score - d * d;
    }
    best = score > best ? score : best;
    feat[fr % 32] = (feat[fr % 32] + fr) % 31;
  }
  return best;
}
|}

(* -------------------- the two named anomalies ----------------------- *)

(* Stanford Queens: array-heavy backtracking with many simultaneously
   live values, making the register allocation (and hence which register
   serves as the hot LEA base) sensitive to a single extra interval. *)
let queens =
  b "queens" `Micro
    {|
struct opts {
  int verbose : 1;
  int limit : 12;
};
int main() {
  struct opts o;
  o.verbose = 0;
  o.limit = 200;
  int rowsafe[9];
  int diag1[17];
  int diag2[17];
  int pos[9];
  int count = 0;
  for (int i = 0; i < 9; i = i + 1) { rowsafe[i] = 1; pos[i] = 0; }
  for (int i = 0; i < 17; i = i + 1) { diag1[i] = 1; diag2[i] = 1; }
  int col = 0;
  int trial = 0;
  while (col >= 0 && count < o.limit) {
    trial = trial + 1;
    if (trial > 4000) { count = count + 1000; col = -1; }
    else {
      int row = pos[col];
      int placed = 0;
      while (row < 8 && placed == 0) {
        if (rowsafe[row] && diag1[row + col] && diag2[row - col + 8]) {
          rowsafe[row] = 0;
          diag1[row + col] = 0;
          diag2[row - col + 8] = 0;
          pos[col] = row + 1;
          placed = 1;
          if (col == 7) {
            count = count + 1;
            rowsafe[row] = 1;
            diag1[row + col] = 0 + 1;
            diag2[row - col + 8] = 1;
          } else {
            col = col + 1;
            pos[col] = 0;
          }
        } else {
          row = row + 1;
        }
      }
      if (placed == 0) {
        pos[col] = 0;
        col = col - 1;
        if (col >= 0) {
          int prow = pos[col] - 1;
          rowsafe[prow] = 1;
          diag1[prow + col] = 1;
          diag2[prow - col + 8] = 1;
        }
      }
    }
  }
  return count;
}
|}

(* Shootout nestedloop: the jump-threading compile-time anomaly. *)
let nestedloop =
  b "nestedloop" `Micro
    {|
int main() {
  int n = 9;
  int x = 0;
  for (int a = 0; a < n; a = a + 1) {
    int odd = a & 1;
    for (int c = 0; c < n; c = c + 1)
      for (int d = 0; d < n; d = d + 1)
        for (int e = 0; e < n; e = e + 1) {
          if (odd) { x = x + 1; } else { x = x + 2; }
        }
  }
  return x - 6561;
}
|}

let cint = [ perlbench; bzip2; gcc; mcf; gobmk; hmmer; sjeng; libquantum; h264ref; omnetpp; astar; xalancbmk ]
let cfp = [ milc; namd; dealii; soplex; povray; lbm; sphinx3 ]
let micro = [ queens; nestedloop ]
let all = cint @ cfp @ micro
