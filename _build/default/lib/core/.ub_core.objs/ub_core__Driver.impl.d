lib/core/driver.ml: Func Gc List Ub_backend Ub_ir Ub_minic Ub_opt Ub_sem Ub_support Unix Util
