lib/core/spec_suite.ml:
